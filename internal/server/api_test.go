package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"reusetool/pkg/client"
)

// TestErrorEnvelopeShape pins the raw v1 error contract: every non-2xx
// body is {"api_version":"v1","error":{"code","message"}}.
func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		APIVersion string `json:"api_version"`
		Err        struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if doc.APIVersion != client.APIVersion {
		t.Fatalf("api_version = %q, want %q (body %s)", doc.APIVersion, client.APIVersion, raw)
	}
	if doc.Err.Code != string(client.CodeNotFound) || doc.Err.Message == "" {
		t.Fatalf("error = %+v, want not_found with a message", doc.Err)
	}
}

func TestJobListEndpoint(t *testing.T) {
	// A second submission must still be in flight when the state filter is
	// queried, so every job carries a synthetic 2s latency; the first one
	// is cancelled to reach a terminal state without waiting it out.
	_, ts := newTestServer(t, Config{SimulateLatency: 2 * time.Second})
	first, status := postAnalyze(t, ts, AnalyzeRequest{Workload: "fig2"})
	if status != http.StatusAccepted {
		t.Fatalf("first analyze status %d", status)
	}
	cancelReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(cancelReq); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	waitStatus(t, ts, first.ID, "canceled")
	second, status := postAnalyze(t, ts, AnalyzeRequest{Workload: "fig1a"})
	if status != http.StatusAccepted {
		t.Fatalf("second analyze status %d", status)
	}

	get := func(path string) (int, client.JobList) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var list client.JobList
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, list
	}

	status, list := get("/v1/jobs")
	if status != http.StatusOK || len(list.Jobs) != 2 {
		t.Fatalf("list: status=%d jobs=%d, want 200/2", status, len(list.Jobs))
	}
	if list.APIVersion != client.APIVersion {
		t.Fatalf("list api_version = %q", list.APIVersion)
	}
	for _, j := range list.Jobs {
		if j.Report != "" || j.Result != nil {
			t.Fatal("list entries must omit report/result payloads")
		}
		if j.APIVersion != client.APIVersion {
			t.Fatalf("job %s api_version = %q", j.ID, j.APIVersion)
		}
	}

	status, list = get("/v1/jobs?state=canceled")
	if status != http.StatusOK || len(list.Jobs) != 1 || list.Jobs[0].ID != first.ID {
		t.Fatalf("canceled filter: status=%d jobs=%+v", status, list.Jobs)
	}
	status, list = get("/v1/jobs?state=done")
	if status != http.StatusOK || len(list.Jobs) != 0 {
		t.Fatalf("done filter: status=%d jobs=%+v", status, list.Jobs)
	}
	if status, _ := get("/v1/jobs?state=bogus"); status != http.StatusBadRequest {
		t.Fatalf("bogus filter status %d, want 400", status)
	}

	cancel2, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(cancel2); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
}

// waitStatus polls until the job reaches the given terminal state.
func waitStatus(t *testing.T, ts *httptest.Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j := getJob(t, ts, id); string(j.Status) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
}

// TestHealthAliasesAgree: the v1 route and the PR 5 /healthz alias must
// serve the same typed document.
func TestHealthAliasesAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	fetch := func(path string) client.Health {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		var h client.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	v1, legacy := fetch("/v1/health"), fetch("/healthz")
	if v1 != legacy {
		t.Fatalf("/v1/health %+v != /healthz %+v", v1, legacy)
	}
	if v1.APIVersion != client.APIVersion || v1.Role != "worker" || v1.Status != "ok" {
		t.Fatalf("health = %+v", v1)
	}
}
