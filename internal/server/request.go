package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"time"

	"reusetool/internal/cache"
	"reusetool/internal/core"
	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/lang"
	"reusetool/internal/persist"
	"reusetool/internal/sampling"
	"reusetool/internal/workloads"
	"reusetool/pkg/client"
)

// AnalyzeRequest is the POST /v1/analyze body. The wire type lives in
// pkg/client — the public client package is the source of truth for
// the v1 protocol — and the server aliases it so resolve() and the
// handlers cannot drift from what clients send.
type AnalyzeRequest = client.AnalyzeRequest

// CacheKeyFor validates a request and computes its content-addressed
// cache key without executing anything. The cluster coordinator shards
// jobs across workers with it: the key a worker would compute for the
// same request is identical, so routing by key gives every worker an
// effectively private slice of the keyspace.
func CacheKeyFor(req AnalyzeRequest) (string, error) {
	rr, err := resolve(req, 0)
	if err != nil {
		return "", err
	}
	return rr.cacheKey(), nil
}

// resolved is a validated request, ready to key and execute: the
// program is parsed/built, the hierarchy picked, defaults applied.
type resolved struct {
	req       AnalyzeRequest
	prog      *ir.Program
	init      func(*interp.Machine) error
	canonical string // canonical IR bytes (lang.Format of the program)
	dataset   *persist.Dataset
	hier      *cache.Hierarchy
	hierName  string
	mode      string
	level     string
	minShare  float64
	timeout   time.Duration
	name      string // program name for bookkeeping
	sample    sampling.Config
}

// resolve validates a request and normalizes it into executable form.
func resolve(req AnalyzeRequest, maxTimeout time.Duration) (*resolved, error) {
	r := &resolved{req: req}

	nSources := 0
	if req.Workload != "" {
		nSources++
	}
	if req.Program != "" {
		nSources++
	}
	if nSources != 1 {
		return nil, fmt.Errorf("exactly one of workload or program must be set")
	}

	switch {
	case req.Workload != "":
		prog, init, err := workloads.Build(req.Workload)
		if err != nil {
			return nil, err
		}
		r.prog, r.init, r.name = prog, init, prog.Name
	case req.Program != "":
		prog, init, err := lang.Parse(req.Program)
		if err != nil {
			return nil, fmt.Errorf("program: %w", err)
		}
		r.prog, r.init, r.name = prog, init, prog.Name
	}
	// Canonical IR bytes: the formatted program is whitespace- and
	// comment-insensitive, so trivially different spellings of the same
	// program share a cache key.
	r.canonical = lang.Format(r.prog)

	if len(req.Artifact) > 0 {
		d, err := persist.Load(bytes.NewReader(req.Artifact))
		if err != nil {
			return nil, fmt.Errorf("artifact: %w", err)
		}
		r.dataset = d
	}

	r.mode = req.Mode
	if r.mode == "" {
		r.mode = "dynamic"
	}
	if r.mode != "dynamic" && r.mode != "static" {
		return nil, fmt.Errorf("unknown mode %q (want dynamic or static)", req.Mode)
	}
	if r.mode == "static" && r.dataset != nil {
		return nil, fmt.Errorf("static mode cannot be combined with an artifact")
	}

	r.sample = sampling.Config{
		Rate:      req.SampleRate,
		MaxBlocks: req.SampleMaxBlocks,
		Seed:      req.SampleSeed,
	}
	if err := r.sample.Validate(); err != nil {
		return nil, err
	}
	if r.sample.Enabled() {
		if r.mode == "static" {
			return nil, fmt.Errorf("static mode cannot sample; drop the sample_* fields")
		}
		if r.dataset != nil {
			return nil, fmt.Errorf("an artifact keeps its collection-time sampling; drop the sample_* fields")
		}
	}

	r.hierName = req.Hierarchy
	if r.hierName == "" {
		r.hierName = "scaled"
	}
	switch r.hierName {
	case "scaled":
		r.hier = cache.ScaledItanium2()
	case "full":
		r.hier = cache.Itanium2()
	case "opteron":
		r.hier = cache.Opteron()
	default:
		return nil, fmt.Errorf("unknown hierarchy %q (want scaled, full, or opteron)", req.Hierarchy)
	}

	for name := range req.Params {
		if _, ok := r.prog.Defaults[name]; !ok {
			return nil, fmt.Errorf("program %s has no parameter %q", r.name, name)
		}
	}

	r.level = req.Level
	if r.level == "" {
		r.level = "L2"
	}
	if r.hier.Level(r.level) == nil {
		return nil, fmt.Errorf("hierarchy %s has no level %q", r.hier.Name, r.level)
	}
	r.minShare = req.MinShare
	if r.minShare == 0 {
		r.minShare = 0.02
	}

	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms")
	}
	r.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	if maxTimeout > 0 && r.timeout > maxTimeout {
		r.timeout = maxTimeout
	}
	return r, nil
}

// cacheKey is the content address of the analysis: a SHA-256 over the
// canonical IR bytes and every option that can change the result or the
// rendered report. Submitting the same program with the same options —
// whether as a workload name, differently formatted source, or from a
// different client — lands on the same key.
func (r *resolved) cacheKey() string {
	h := sha256.New()
	write := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	write("reusetoold/v1")
	// Workload submissions are keyed by name in addition to the IR: a
	// built-in may carry Go-side init state (e.g. gtc's particle fill)
	// that the formatted IR does not capture, so it must not alias a
	// source submission of the same text.
	if r.req.Workload != "" {
		write("workload", r.req.Workload)
	} else {
		write("program")
	}
	write(r.canonical)
	if len(r.req.Artifact) > 0 {
		sum := sha256.Sum256(r.req.Artifact)
		write("artifact", hex.EncodeToString(sum[:]))
	}
	write("hier", r.hierName, "mode", r.mode)
	// Sampled and exact analyses of the same program must never share a
	// key. Exact requests write nothing here, so every pre-sampling key
	// is unchanged; sampled requests key on the normalized config, so
	// equivalent spellings (seed 0 vs. the explicit default) coincide.
	if r.sample.Enabled() {
		n := r.sample.Normalized()
		write("sample",
			strconv.FormatUint(n.Rate, 10),
			strconv.Itoa(n.MaxBlocks),
			strconv.FormatUint(n.Seed, 10))
	}
	write("histres", strconv.Itoa(r.req.HistRes))
	write("level", r.level)
	write("minshare", strconv.FormatFloat(r.minShare, 'g', -1, 64))
	names := make([]string, 0, len(r.req.Params))
	for name := range r.req.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		write("param", name, strconv.FormatInt(r.req.Params[name], 10))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// execute runs the pipeline for a cache miss and packages the result as
// a cache entry: rendered report, deterministic JSON, persist artifact,
// and the collector fingerprint the cache verifies hits against.
func (r *resolved) execute(ctx context.Context) (*CacheEntry, error) {
	opts := core.Options{
		Hierarchy: r.hier,
		Params:    r.req.Params,
		HistRes:   r.req.HistRes,
		Init:      r.init,
		Sampling:  r.sample,
	}
	var src core.Source
	switch {
	case r.dataset != nil:
		src = core.SavedSource{
			Prog:      r.prog,
			Collector: r.dataset.Collector(),
			Trips:     r.dataset.TripsFunc(1),
		}
	case r.mode == "static":
		src = core.StaticSource{Prog: r.prog}
	default:
		src = core.DynamicSource{Prog: r.prog}
	}
	res, err := core.Pipeline{Source: src, Options: opts}.RunContext(ctx)
	if err != nil {
		return nil, err
	}

	var report bytes.Buffer
	if err := res.WriteSummary(&report, r.level, r.minShare); err != nil {
		return nil, fmt.Errorf("render report: %w", err)
	}
	doc, err := res.EncodeJSON()
	if err != nil {
		return nil, err
	}
	var artifact bytes.Buffer
	snap := persist.Snapshot(res.Collector, r.name, nil)
	if res.Run != nil {
		snap = persist.Snapshot(res.Collector, r.name, res.Run.Trips)
	}
	if err := persist.Save(&artifact, snap); err != nil {
		return nil, err
	}
	entry := &CacheEntry{
		Key:         r.cacheKey(),
		Program:     r.name,
		Fingerprint: res.Collector.Fingerprint(),
		Artifact:    artifact.Bytes(),
		Report:      report.Bytes(),
		JSON:        doc,
	}
	if any, infos := res.Collector.Sampled(); any {
		for _, info := range infos {
			if !info.Enabled {
				continue
			}
			entry.SampledBlocks += uint64(info.AdmittedBlocks)
			if info.Rate > entry.SampleRate {
				entry.SampleRate = info.Rate
			}
		}
	}
	return entry, nil
}
