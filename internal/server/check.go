package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"reusetool/internal/cache"
	"reusetool/internal/ir"
	"reusetool/internal/lang"
	"reusetool/internal/reusecheck"
	"reusetool/internal/workloads"
	"reusetool/pkg/client"
)

// CheckHandler serves POST /v1/check: the static reuse checker run
// synchronously over one program. It is a free function — checks need
// no scheduler, cache or other daemon state — so the cluster
// coordinator mounts the identical handler and the v1 surface stays
// uniform across worker and coordinator. maxBodyBytes <= 0 selects the
// default request cap (16 MiB).
func CheckHandler(maxBodyBytes int64) http.HandlerFunc {
	if maxBodyBytes <= 0 {
		maxBodyBytes = 16 << 20
	}
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "read body: %v", err)
			return
		}
		if int64(len(body)) > maxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, client.CodeTooLarge, "body exceeds %d bytes", maxBodyBytes)
			return
		}
		var req client.CheckRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "decode request: %v", err)
			return
		}
		resp, err := runCheckRequest(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// runCheckRequest validates a check request and runs the checker. It
// mirrors resolve()'s program/hierarchy/level handling so /v1/check and
// /v1/analyze reject the same inputs the same way.
func runCheckRequest(req client.CheckRequest) (*client.CheckResponse, error) {
	nSources := 0
	if req.Workload != "" {
		nSources++
	}
	if req.Program != "" {
		nSources++
	}
	if nSources != 1 {
		return nil, fmt.Errorf("exactly one of workload or program must be set")
	}

	opts := reusecheck.Options{Params: req.Params}
	var prog *ir.Program
	switch {
	case req.Workload != "":
		p, init, err := workloads.Build(req.Workload)
		if err != nil {
			return nil, err
		}
		prog = p
		opts.AssumeInitialized = init != nil
	case req.Program != "":
		p, _, meta, err := lang.ParseFile("program.loop", req.Program)
		if err != nil {
			return nil, fmt.Errorf("program: %w", err)
		}
		prog = p
		opts.Initialized = meta.Inited
		opts.ParamLines = meta.ParamLines
		opts.File = "program.loop"
	}

	hierName := req.Hierarchy
	if hierName == "" {
		hierName = "scaled"
	}
	switch hierName {
	case "scaled":
		opts.Hier = cache.ScaledItanium2()
	case "full":
		opts.Hier = cache.Itanium2()
	case "opteron":
		opts.Hier = cache.Opteron()
	default:
		return nil, fmt.Errorf("unknown hierarchy %q (want scaled, full, or opteron)", req.Hierarchy)
	}

	for name := range req.Params {
		if _, ok := prog.Defaults[name]; !ok {
			return nil, fmt.Errorf("program %s has no parameter %q", prog.Name, name)
		}
	}

	opts.Level = req.Level
	if opts.Level == "" {
		opts.Level = "L2"
	}
	if opts.Hier.Level(opts.Level) == nil {
		return nil, fmt.Errorf("hierarchy %s has no level %q", opts.Hier.Name, opts.Level)
	}

	info, err := prog.Finalize()
	if err != nil {
		return nil, err
	}
	diags := reusecheck.Check(info, opts)
	resp := &client.CheckResponse{
		APIVersion:  client.APIVersion,
		Program:     prog.Name,
		Findings:    reusecheck.Findings(diags),
		Diagnostics: make([]client.CheckDiagnostic, len(diags)),
	}
	for i, d := range diags {
		resp.Diagnostics[i] = client.CheckDiagnostic{
			File:         d.File,
			Line:         d.Line,
			Code:         d.Code,
			Severity:     d.Severity.String(),
			Msg:          d.Msg,
			Hint:         d.Hint,
			MissDelta:    d.MissDelta,
			Level:        d.Level,
			Transform:    d.Transform,
			Legality:     d.Legality,
			LegalityNote: d.LegalityNote,
		}
	}
	return resp, nil
}
