package server

import (
	"bytes"
	"context"
	"encoding/gob"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// startPeer stands up a real daemon to act as the shared cache tier.
func startPeer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func TestRemoteTierCrossDaemonHit(t *testing.T) {
	peer, ts := startPeer(t)
	e := collectEntry(t, key(11))
	peer.Cache().PutLocal(e)

	m := NewMetrics()
	c, err := NewResultCache(CacheOptions{MaxEntries: 4, Remote: NewRemoteCache(ts.URL, m)}, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(context.Background()) })

	got, ok := c.Get(t.Context(), key(11))
	if !ok || !bytes.Equal(got.Report, e.Report) {
		t.Fatal("expected verified remote hit")
	}
	if m.RemoteHits.Load() != 1 {
		t.Fatalf("remote hits = %d, want 1", m.RemoteHits.Load())
	}
	if peer.Metrics().PeerHits.Load() != 1 {
		t.Fatalf("peer hits = %d, want 1", peer.Metrics().PeerHits.Load())
	}

	// Fill-through: the second lookup is local, no extra remote trip.
	if _, ok := c.Get(t.Context(), key(11)); !ok {
		t.Fatal("fill-through entry missing")
	}
	if m.RemoteHits.Load() != 1 {
		t.Fatalf("remote hits = %d after local re-read, want 1", m.RemoteHits.Load())
	}

	// Unknown keys are remote misses, not errors.
	if _, ok := c.Get(t.Context(), key(12)); ok {
		t.Fatal("unexpected hit")
	}
	if m.RemoteMisses.Load() != 1 || m.RemoteErrors.Load() != 0 {
		t.Fatalf("misses=%d errors=%d, want 1/0", m.RemoteMisses.Load(), m.RemoteErrors.Load())
	}
}

func TestWriteBehindPropagatesToPeer(t *testing.T) {
	peer, ts := startPeer(t)
	m := NewMetrics()
	c, err := NewResultCache(CacheOptions{MaxEntries: 4, Remote: NewRemoteCache(ts.URL, m)}, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(context.Background()) })

	e := collectEntry(t, key(21))
	c.Put(e)
	deadline := time.Now().Add(5 * time.Second)
	for peer.Metrics().PeerPuts.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if peer.Metrics().PeerPuts.Load() != 1 {
		t.Fatal("write-behind PUT never reached the peer")
	}
	got, ok := peer.Cache().Get(t.Context(), key(21))
	if !ok || got.Fingerprint != e.Fingerprint {
		t.Fatal("peer did not store the pushed entry")
	}
}

// TestCacheCloseFlushesAsyncTiers is the graceful-drain guarantee: a
// SIGTERM arriving right after Put must not lose the disk write or the
// queued remote write. Close must push everything out before returning.
func TestCacheCloseFlushesAsyncTiers(t *testing.T) {
	peer, ts := startPeer(t)
	dir := t.TempDir()
	m := NewMetrics()
	c, err := NewResultCache(CacheOptions{
		MaxEntries: 16,
		Dir:        dir,
		Remote:     NewRemoteCache(ts.URL, m),
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	entries := make([]*CacheEntry, n)
	for i := range entries {
		entries[i] = collectEntry(t, key(30+i))
		c.Put(entries[i])
	}
	// Close immediately — the drain race this exercises.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Every entry must be on disk (visible to a fresh cache)...
	c2, err := NewResultCache(CacheOptions{MaxEntries: 16, Dir: dir}, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if _, ok := c2.Get(t.Context(), key(30+i)); !ok {
			t.Fatalf("entry %d missing from disk after Close", i)
		}
	}
	// ...and on the remote tier.
	if got := peer.Metrics().PeerPuts.Load(); got != n {
		t.Fatalf("peer received %d PUTs, want %d", got, n)
	}

	// Put after Close degrades gracefully: inline disk write, dropped
	// remote write — never a hang or a panic.
	late := collectEntry(t, key(50))
	c.Put(late)
	c3, err := NewResultCache(CacheOptions{MaxEntries: 16, Dir: dir}, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(t.Context(), key(50)); !ok {
		t.Fatal("post-Close Put did not reach disk")
	}
	if m.WriteBehindDropped.Load() == 0 {
		t.Fatal("post-Close remote write not counted as dropped")
	}
}

func TestWriteBehindCoalescesPendingKey(t *testing.T) {
	// A remote that blocks until released, so entries stay queued.
	release := make(chan struct{})
	var mu sync.Mutex
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		mu.Lock()
		got = append(got, r.URL.Path)
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(ts.Close)

	m := NewMetrics()
	wb := newWriteBehind(NewRemoteCache(ts.URL, m), m, 4)
	a, b := collectEntry(t, key(61)), collectEntry(t, key(62))
	wb.Enqueue(a)
	// Give the writer a moment to take "a" off the queue so the
	// coalescing below targets queued-but-not-inflight state.
	time.Sleep(50 * time.Millisecond)
	wb.Enqueue(b)
	wb.Enqueue(b) // same key: coalesces, does not grow the queue
	if m.WriteBehindCoalesced.Load() != 1 {
		t.Fatalf("coalesced = %d, want 1", m.WriteBehindCoalesced.Load())
	}
	if wb.Len() != 1 {
		t.Fatalf("queue depth = %d, want 1", wb.Len())
	}

	// Overflow: with depth 4, filling past capacity drops the newest.
	for i := 0; i < 6; i++ {
		wb.Enqueue(collectEntry(t, key(70+i)))
	}
	if m.WriteBehindDropped.Load() == 0 {
		t.Fatal("overflow not counted as dropped")
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := wb.Close(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no PUTs delivered after release")
	}
}

func TestRemoteGetRejectsCorruptEntries(t *testing.T) {
	// A peer serving a tampered entry: decodes fine, fails verification.
	bad := collectEntry(t, key(81))
	bad.Fingerprint ^= 0xbeef
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/cache/" + key(81):
			_ = gob.NewEncoder(w).Encode(bad)
		case "/v1/cache/" + key(82):
			w.Write([]byte("not gob at all"))
		default:
			// Entry whose key disagrees with the path.
			other := collectEntry(t, key(84))
			_ = gob.NewEncoder(w).Encode(other)
		}
	}))
	t.Cleanup(ts.Close)

	m := NewMetrics()
	rc := NewRemoteCache(ts.URL, m)
	for i, k := range []string{key(81), key(82), key(83)} {
		if _, ok := rc.Get(t.Context(), k); ok {
			t.Fatalf("case %d: corrupt remote entry served", i)
		}
	}
	if m.RemoteErrors.Load() != 3 {
		t.Fatalf("remote errors = %d, want 3", m.RemoteErrors.Load())
	}
	if m.RemoteHits.Load() != 0 {
		t.Fatal("corrupt entries counted as hits")
	}
}

func TestCachePutHandlerValidation(t *testing.T) {
	_, ts := startPeer(t)
	put := func(path string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Malformed keys never reach the disk path logic.
	if code := put("/v1/cache/..%2F..%2Fetc", nil); code != http.StatusBadRequest {
		t.Fatalf("traversal key: status %d, want 400", code)
	}
	if code := put("/v1/cache/ABCDEF", nil); code != http.StatusBadRequest {
		t.Fatalf("short key: status %d, want 400", code)
	}
	// Key mismatch between path and entry body.
	e := collectEntry(t, key(91))
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatal(err)
	}
	if code := put("/v1/cache/"+key(92), buf.Bytes()); code != http.StatusBadRequest {
		t.Fatalf("key mismatch: status %d, want 400", code)
	}
	// Tampered fingerprint is refused.
	e.Fingerprint ^= 1
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatal(err)
	}
	if code := put("/v1/cache/"+key(91), buf.Bytes()); code != http.StatusBadRequest {
		t.Fatalf("tampered entry: status %d, want 400", code)
	}
	// The genuine entry is accepted.
	good := collectEntry(t, key(91))
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(good); err != nil {
		t.Fatal(err)
	}
	if code := put("/v1/cache/"+key(91), buf.Bytes()); code != http.StatusNoContent {
		t.Fatalf("valid entry: status %d, want 204", code)
	}
}
