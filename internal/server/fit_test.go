package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"reusetool/pkg/client"
)

// postJSON posts a request body to path and returns the status plus the
// decoded error envelope (zero-valued on success).
func postJSON(t *testing.T, ts *httptest.Server, path string, req any) (int, client.ErrorEnvelope, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var env client.ErrorEnvelope
	if resp.StatusCode >= 300 {
		if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
			t.Fatalf("decode error envelope (status %d): %v\n%s", resp.StatusCode, err, buf.String())
		}
	}
	return resp.StatusCode, env, buf.Bytes()
}

func fig2Fit() client.FitRequest {
	return client.FitRequest{
		Workload: "fig2",
		TrainParams: []map[string]int64{
			{"N": 64}, {"N": 96}, {"N": 128},
		},
	}
}

// TestFitPredictThroughAPI drives the whole service surface: fit a fig2
// model from three small runs, then answer a 16x what-if query from the
// cached model and check the numbers against a real run.
func TestFitPredictThroughAPI(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Pre-run one training input so the fit gets a warm hit.
	j, status := postAnalyze(t, ts, AnalyzeRequest{Workload: "fig2", Params: map[string]int64{"N": 64}})
	if status != http.StatusAccepted {
		t.Fatalf("training pre-run status %d", status)
	}
	pollDone(t, ts, j.ID)

	status, _, body := postJSON(t, ts, "/v1/fit", fig2Fit())
	if status != http.StatusAccepted {
		t.Fatalf("fit status %d: %s", status, body)
	}
	var job JobJSON
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	d := pollDone(t, ts, job.ID)
	if d.Status != JobDone {
		t.Fatalf("fit job: %s (%s)", d.Status, d.Error)
	}
	if !strings.Contains(d.Report, "Cross-input scaling model") {
		t.Fatalf("fit report missing model summary:\n%s", d.Report)
	}
	if warm := metricValue(t, ts, "reusetoold_fit_training_warm_hits_total"); warm < 1 {
		t.Fatalf("fit_training_warm_hits_total = %g, want >= 1 (pre-run should have warmed N=64)", warm)
	}

	// Refitting the same spec is a pure cache hit: 200, no new job.
	status, _, body = postJSON(t, ts, "/v1/fit", fig2Fit())
	if status != http.StatusOK {
		t.Fatalf("warm fit status %d: %s", status, body)
	}
	var warmJob JobJSON
	if err := json.Unmarshal(body, &warmJob); err != nil {
		t.Fatal(err)
	}
	if !warmJob.CacheHit {
		t.Fatal("warm fit not served from cache")
	}

	// Predict a 16x larger input, addressing the model by fit spec.
	preq := client.PredictRequest{
		Workload:    "fig2",
		TrainParams: fig2Fit().TrainParams,
		Params:      map[string]int64{"N": 2048},
	}
	submitted := metricValue(t, ts, "reusetoold_jobs_submitted_total")
	status, _, body = postJSON(t, ts, "/v1/predict", preq)
	if status != http.StatusOK {
		t.Fatalf("predict status %d: %s", status, body)
	}
	var pr client.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Params["N"] != 2048 {
		t.Fatalf("predict echoed params %v", pr.Params)
	}
	if pr.ElapsedUS <= 0 {
		t.Fatalf("elapsed_us = %g", pr.ElapsedUS)
	}
	if !strings.Contains(pr.Report, "Fit: 3 training runs") {
		t.Fatalf("predict report missing fit disclosure:\n%s", pr.Report)
	}
	var l2 *client.PredictedLevel
	for i := range pr.Levels {
		if pr.Levels[i].Level == "L2" {
			l2 = &pr.Levels[i]
		}
	}
	if l2 == nil {
		t.Fatalf("no L2 in predicted levels %+v", pr.Levels)
	}

	// Predicting must not have scheduled any job.
	if after := metricValue(t, ts, "reusetoold_jobs_submitted_total"); after != submitted {
		t.Fatalf("predict scheduled a job: jobs_submitted_total %g -> %g", submitted, after)
	}

	// Compare against the exact analysis at N=2048.
	j, _ = postAnalyze(t, ts, AnalyzeRequest{Workload: "fig2", Params: map[string]int64{"N": 2048}})
	exact := pollDone(t, ts, j.ID)
	if exact.Status != JobDone {
		t.Fatalf("exact run: %s (%s)", exact.Status, exact.Error)
	}
	var doc struct {
		Levels []struct {
			Level  string  `json:"level"`
			Misses float64 `json:"total_misses"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(exact.Result, &doc); err != nil {
		t.Fatal(err)
	}
	var exactL2 float64
	for _, l := range doc.Levels {
		if l.Level == "L2" {
			exactL2 = l.Misses
		}
	}
	if exactL2 == 0 {
		t.Fatalf("exact result has no L2 misses: %s", exact.Result)
	}
	rel := (l2.TotalMisses - exactL2) / exactL2
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.30 {
		t.Fatalf("predicted L2 misses %.0f vs exact %.0f: rel err %.2f > 0.30", l2.TotalMisses, exactL2, rel)
	}

	// A second predict hits the decoded-model memo.
	status, _, _ = postJSON(t, ts, "/v1/predict", preq)
	if status != http.StatusOK {
		t.Fatalf("repeat predict status %d", status)
	}
	if served := metricValue(t, ts, "reusetoold_predicts_served_total"); served != 2 {
		t.Fatalf("predicts_served_total = %g, want 2", served)
	}
}

// TestFitRejectsUnsoundSampling is the daemon-surface contract for
// satellite soundness: R>1 or adaptive (max-blocks) sampled training
// inputs are refused with the typed unsound_training_input code.
func TestFitRejectsUnsoundSampling(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]client.FitRequest{
		"rate>1": func() client.FitRequest {
			r := fig2Fit()
			r.SampleRate = 8
			return r
		}(),
		"adaptive": func() client.FitRequest {
			r := fig2Fit()
			r.SampleRate = 1
			r.SampleMaxBlocks = 512
			return r
		}(),
	} {
		status, env, _ := postJSON(t, ts, "/v1/fit", req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
		if env.Err.Code != client.CodeUnsoundTrainingInput {
			t.Errorf("%s: code %q, want %q", name, env.Err.Code, client.CodeUnsoundTrainingInput)
		}
	}
	// Predict addressing a model by an unsound fit spec gets the same code.
	status, env, _ := postJSON(t, ts, "/v1/predict", client.PredictRequest{
		Workload:    "fig2",
		TrainParams: []map[string]int64{{"N": 64}},
		Params:      map[string]int64{"N": 1024},
	})
	if status != http.StatusBadRequest {
		t.Errorf("predict bad spec: status %d, want 400", status)
	}
	if env.Err.Code != client.CodeInvalidRequest {
		t.Errorf("predict bad spec: code %q", env.Err.Code)
	}
}

// TestFitBadRequests covers the remaining 400 paths.
func TestFitBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]client.FitRequest{
		"one binding": {Workload: "fig2", TrainParams: []map[string]int64{{"N": 64}}},
		"identical bindings": {Workload: "fig2",
			TrainParams: []map[string]int64{{"N": 64}, {"N": 64}, {"N": 64}}},
		"unknown param": {Workload: "fig2",
			TrainParams: []map[string]int64{{"N": 64}, {"nope": 96}}},
		"unknown workload": {Workload: "nope",
			TrainParams: []map[string]int64{{"N": 64}, {"N": 96}}},
	} {
		status, env, _ := postJSON(t, ts, "/v1/fit", req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
		if env.Err.Code != client.CodeInvalidRequest {
			t.Errorf("%s: code %q, want invalid_request", name, env.Err.Code)
		}
	}
}

// TestPredictWithoutModel404s: no fit, no model, typed not_found with a
// pointer at /v1/fit.
func TestPredictWithoutModel404s(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, env, _ := postJSON(t, ts, "/v1/predict", client.PredictRequest{
		Workload:    "fig2",
		TrainParams: fig2Fit().TrainParams,
		Params:      map[string]int64{"N": 512},
	})
	if status != http.StatusNotFound {
		t.Fatalf("status %d, want 404", status)
	}
	if env.Err.Code != client.CodeNotFound {
		t.Fatalf("code %q, want not_found", env.Err.Code)
	}
	if !strings.Contains(env.Err.Message, "/v1/fit") {
		t.Fatalf("message should point at /v1/fit: %s", env.Err.Message)
	}
	if v := metricValue(t, ts, "reusetoold_predict_no_model_total"); v != 1 {
		t.Fatalf("predict_no_model_total = %g", v)
	}
}
