package server

import (
	"bytes"
	"container/list"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"reusetool/internal/persist"
)

// CacheEntry is one content-addressed analysis result: the key is the
// SHA-256 of the canonical IR bytes plus canonicalized options (see
// resolved.cacheKey), the value is everything needed to answer the
// request without re-running the interpreter — the deterministic
// persist-v2 collector stream, the rendered text report, and the
// deterministic JSON document. Fingerprint is the collector's engine
// fingerprint at collection time; hits are verified against it by
// round-tripping the artifact through internal/persist.
type CacheEntry struct {
	Key         string
	Program     string
	Fingerprint uint64
	Artifact    []byte
	Report      []byte
	JSON        []byte
}

// verify round-trips the persist artifact and checks the restored
// engines reproduce the recorded fingerprint — a corrupted or stale
// artifact (e.g. a truncated disk file predating atomic writes) is
// rejected rather than served.
func (e *CacheEntry) verify() error {
	if len(e.Artifact) == 0 {
		return fmt.Errorf("server: cache entry %s has no artifact", e.Key)
	}
	d, err := persist.Load(bytes.NewReader(e.Artifact))
	if err != nil {
		return fmt.Errorf("server: cache entry %s: %w", e.Key, err)
	}
	if fp := d.Collector().Fingerprint(); fp != e.Fingerprint {
		return fmt.Errorf("server: cache entry %s: fingerprint %016x != recorded %016x",
			e.Key, fp, e.Fingerprint)
	}
	return nil
}

// ResultCache is the two-tier content-addressed store in front of the
// scheduler: a bounded in-memory LRU, optionally backed by an on-disk
// artifact directory that survives restarts. Disk entries are written
// atomically (tmp+rename, the persist.SaveFile protocol) so concurrent
// daemons sharing a directory never serve torn artifacts.
type ResultCache struct {
	// mu guards the LRU structures only; disk I/O happens outside the
	// critical sections.
	mu      sync.Mutex
	max     int
	ll      *list.List               // guarded by mu
	byKey   map[string]*list.Element // guarded by mu
	dir     string
	metrics *Metrics
}

// NewResultCache builds a cache holding up to maxEntries results in
// memory. dir enables the disk tier when non-empty (the directory is
// created if needed); metrics may be nil.
func NewResultCache(maxEntries int, dir string, m *Metrics) (*ResultCache, error) {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	if m == nil {
		m = NewMetrics()
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	c := &ResultCache{
		max:     maxEntries,
		ll:      list.New(),
		byKey:   map[string]*list.Element{},
		dir:     dir,
		metrics: m,
	}
	return c, nil
}

// Len reports the number of memory-resident entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get returns the entry for key, consulting the memory tier first and
// then the disk tier, verifying the artifact fingerprint before serving
// it. A verification failure evicts the entry and reports a miss.
func (c *ResultCache) Get(key string) (*CacheEntry, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*CacheEntry)
		c.mu.Unlock()
		if err := e.verify(); err != nil {
			c.metrics.CacheBadVerify.Add(1)
			c.drop(key)
			c.metrics.CacheMisses.Add(1)
			return nil, false
		}
		c.metrics.CacheHits.Add(1)
		return e, true
	}
	c.mu.Unlock()
	if e, ok := c.loadDisk(key); ok {
		if err := e.verify(); err != nil {
			c.metrics.CacheBadVerify.Add(1)
			os.Remove(c.diskPath(key))
			c.metrics.CacheMisses.Add(1)
			return nil, false
		}
		c.insert(e)
		c.metrics.CacheHits.Add(1)
		c.metrics.CacheDiskHits.Add(1)
		return e, true
	}
	c.metrics.CacheMisses.Add(1)
	return nil, false
}

// Put stores a freshly computed entry in both tiers. The disk tier is
// best-effort: the memory tier already holds the entry, so a disk write
// failure degrades persistence, not correctness.
func (c *ResultCache) Put(e *CacheEntry) {
	c.insert(e)
	if c.dir != "" {
		_ = c.saveDisk(e)
	}
}

func (c *ResultCache) insert(e *CacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.Key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[e.Key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*CacheEntry).Key)
		c.metrics.CacheEvictions.Add(1)
	}
}

func (c *ResultCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
}

// diskPath shards entries by the first byte of the key to keep
// directories small under millions of artifacts.
func (c *ResultCache) diskPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".entry")
}

func (c *ResultCache) saveDisk(e *CacheEntry) error {
	path := c.diskPath(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".entry-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(e); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (c *ResultCache) loadDisk(key string) (*CacheEntry, bool) {
	if c.dir == "" {
		return nil, false
	}
	f, err := os.Open(c.diskPath(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e CacheEntry
	if err := gob.NewDecoder(f).Decode(&e); err != nil || e.Key != key {
		return nil, false
	}
	return &e, true
}
