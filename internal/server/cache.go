package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"reusetool/internal/persist"
	"reusetool/internal/predict"
)

// CacheEntry is one content-addressed analysis result: the key is the
// SHA-256 of the canonical IR bytes plus canonicalized options (see
// resolved.cacheKey), the value is everything needed to answer the
// request without re-running the interpreter — the deterministic
// persist-v2 collector stream, the rendered text report, and the
// deterministic JSON document. Fingerprint is the collector's engine
// fingerprint at collection time; hits are verified against it by
// round-tripping the artifact through internal/persist.
type CacheEntry struct {
	Key         string
	Program     string
	Fingerprint uint64
	Artifact    []byte
	Report      []byte
	JSON        []byte

	// SampleRate is the final effective SHARDS sampling rate of the
	// analysis (the adaptive mode may finish above the configured start
	// rate); 0 for exact analyses. SampledBlocks is the number of blocks
	// admitted into the sample across granularities. Both are
	// informational — the key already encodes the sampling config, so
	// sampled and exact results can never alias.
	SampleRate    uint64
	SampledBlocks uint64

	// Model is a serialized cross-input scaling model (predict.Encode)
	// for entries in the model/ key namespace; such entries carry no
	// Artifact and their Fingerprint is the model payload's checksum
	// rather than an engine fingerprint.
	Model []byte
}

// verify round-trips the persist artifact and checks the restored
// engines reproduce the recorded fingerprint — a corrupted or stale
// artifact (e.g. a truncated disk file predating atomic writes, or a
// tampered remote-tier response) is rejected rather than served.
func (e *CacheEntry) verify() error {
	if len(e.Model) > 0 {
		// Model entries carry no persist artifact; the fingerprint slot
		// holds the payload checksum and the payload must decode under
		// this build's format version.
		if err := predict.Verify(e.Model, e.Fingerprint); err != nil {
			return fmt.Errorf("server: cache entry %s: %w", e.Key, err)
		}
		return nil
	}
	if len(e.Artifact) == 0 {
		return fmt.Errorf("server: cache entry %s has no artifact", e.Key)
	}
	d, err := persist.Load(bytes.NewReader(e.Artifact))
	if err != nil {
		return fmt.Errorf("server: cache entry %s: %w", e.Key, err)
	}
	if fp := d.Collector().Fingerprint(); fp != e.Fingerprint {
		return fmt.Errorf("server: cache entry %s: fingerprint %016x != recorded %016x",
			e.Key, fp, e.Fingerprint)
	}
	return nil
}

// CacheOptions sizes and wires a ResultCache.
type CacheOptions struct {
	// MaxEntries bounds the in-memory LRU tier (default 128).
	MaxEntries int
	// Dir enables the on-disk artifact tier when non-empty.
	Dir string
	// Remote enables the shared remote tier when non-nil.
	Remote *RemoteCache
	// WriteBehindDepth bounds the async queue feeding the remote tier
	// (default 64).
	WriteBehindDepth int
	// DiskQueueDepth bounds the async disk-writer queue (default 64).
	DiskQueueDepth int
}

// ResultCache is the three-tier content-addressed store in front of
// the scheduler: a bounded in-memory LRU, an optional on-disk artifact
// directory that survives restarts, and an optional shared remote tier
// reached over HTTP (see RemoteCache). Lookups go memory → disk →
// remote; every hit is fingerprint-verified before it is served, and
// remote hits are filled through into the local tiers.
//
// Writes never block the analysis hot path on I/O: disk writes go
// through a bounded async writer (falling back to an inline write when
// the queue is full, so durability degrades to back-pressure rather
// than loss), and remote writes go through a coalescing write-behind
// queue. Close flushes both; the daemon calls it during graceful
// drain, after the scheduler has stopped producing results.
type ResultCache struct {
	// mu guards the LRU structures and the closed flag; disk and
	// network I/O happen outside the critical sections.
	mu      sync.Mutex
	max     int
	ll      *list.List               // guarded by mu
	byKey   map[string]*list.Element // guarded by mu
	closed  bool                     // guarded by mu
	dir     string
	metrics *Metrics
	remote  *RemoteCache
	wb      *writeBehind

	diskq     chan *CacheEntry
	diskWG    sync.WaitGroup
	closeOnce sync.Once
}

// NewResultCache builds the cache. Metrics may be nil.
func NewResultCache(opts CacheOptions, m *Metrics) (*ResultCache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 128
	}
	if opts.DiskQueueDepth <= 0 {
		opts.DiskQueueDepth = 64
	}
	if m == nil {
		m = NewMetrics()
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	c := &ResultCache{
		max:     opts.MaxEntries,
		ll:      list.New(),
		byKey:   map[string]*list.Element{},
		dir:     opts.Dir,
		metrics: m,
		remote:  opts.Remote,
	}
	if c.dir != "" {
		c.diskq = make(chan *CacheEntry, opts.DiskQueueDepth)
		c.diskWG.Add(1)
		go c.diskWriter()
	}
	if c.remote != nil {
		c.wb = newWriteBehind(c.remote, m, opts.WriteBehindDepth)
	}
	return c, nil
}

// Len reports the number of memory-resident entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// WriteBehindLen reports the entries waiting in the write-behind queue.
func (c *ResultCache) WriteBehindLen() int {
	if c.wb == nil {
		return 0
	}
	return c.wb.Len()
}

// Get returns the entry for key, consulting the memory tier, then the
// disk tier, then the shared remote tier. Every candidate is verified
// against its recorded fingerprint before serving; a verification
// failure evicts the local copy and falls through to the next tier.
// Remote hits are filled through into the local tiers. ctx bounds the
// remote round-trip only — local lookups never block on it.
func (c *ResultCache) Get(ctx context.Context, key string) (*CacheEntry, bool) {
	if e, tier := c.lookupLocal(key); e != nil {
		c.metrics.CacheHits.Add(1)
		if tier == tierDisk {
			c.metrics.CacheDiskHits.Add(1)
		}
		return e, true
	}
	if c.remote != nil {
		if e, ok := c.remote.Get(ctx, key); ok {
			c.insert(e)
			c.enqueueDisk(e)
			c.metrics.CacheHits.Add(1)
			return e, true
		}
	}
	c.metrics.CacheMisses.Add(1)
	return nil, false
}

const (
	tierMem  = "mem"
	tierDisk = "disk"
)

// lookupLocal consults the memory and disk tiers with verification but
// without touching the top-level hit/miss counters — the peer-serving
// handlers account separately from the analyze path.
func (c *ResultCache) lookupLocal(key string) (*CacheEntry, string) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*CacheEntry)
		c.mu.Unlock()
		if err := e.verify(); err != nil {
			c.metrics.CacheBadVerify.Add(1)
			c.drop(key)
		} else {
			return e, tierMem
		}
	} else {
		c.mu.Unlock()
	}
	if e, ok := c.loadDisk(key); ok {
		if err := e.verify(); err != nil {
			c.metrics.CacheBadVerify.Add(1)
			os.Remove(c.diskPath(key))
			return nil, ""
		}
		c.insert(e)
		return e, tierDisk
	}
	return nil, ""
}

// Put stores a freshly computed entry in every tier: memory now, disk
// via the async writer, and the shared remote tier via the coalescing
// write-behind queue.
func (c *ResultCache) Put(e *CacheEntry) {
	c.insert(e)
	c.enqueueDisk(e)
	if c.wb != nil {
		c.wb.Enqueue(e)
	}
}

// PutLocal stores an entry in the memory and disk tiers only. The peer
// PUT handler uses it so entries arriving from the write-behind queue
// of another node are not echoed back to the remote tier.
func (c *ResultCache) PutLocal(e *CacheEntry) {
	c.insert(e)
	c.enqueueDisk(e)
}

// Close flushes the async tiers: the disk-writer queue is drained to
// stable storage and the write-behind queue to the remote tier, each
// bounded by ctx. The daemon calls this during graceful drain after
// the scheduler has finished, so SIGTERM can no longer race an
// in-flight write. Close is idempotent; Put after Close degrades to
// synchronous disk writes and drops remote writes.
func (c *ResultCache) Close(ctx context.Context) error {
	var err error
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		if c.diskq != nil {
			close(c.diskq)
			done := make(chan struct{})
			go func() {
				c.diskWG.Wait()
				close(done)
			}()
			select {
			case <-done:
			case <-ctx.Done():
				err = fmt.Errorf("server: cache close: disk queue: %w", ctx.Err())
				return
			}
		}
		if c.wb != nil {
			err = c.wb.Close(ctx)
		}
	})
	return err
}

func (c *ResultCache) insert(e *CacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.Key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[e.Key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*CacheEntry).Key)
		c.metrics.CacheEvictions.Add(1)
	}
}

func (c *ResultCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
}

// enqueueDisk hands an entry to the async disk writer. A full queue
// falls back to writing inline — back-pressure instead of losing the
// write — and after Close the write happens inline too, so late
// stragglers still land on disk.
func (c *ResultCache) enqueueDisk(e *CacheEntry) {
	if c.dir == "" {
		return
	}
	c.mu.Lock()
	if !c.closed {
		select {
		case c.diskq <- e:
			c.mu.Unlock()
			return
		default:
		}
	}
	c.mu.Unlock()
	c.writeDisk(e)
}

func (c *ResultCache) diskWriter() {
	defer c.diskWG.Done()
	for e := range c.diskq {
		c.writeDisk(e)
	}
}

// diskPath shards entries by the first byte of the key to keep
// directories small under millions of artifacts.
func (c *ResultCache) diskPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".entry")
}

func (c *ResultCache) writeDisk(e *CacheEntry) {
	if err := c.saveDisk(e); err != nil {
		c.metrics.DiskWriteErrors.Add(1)
	}
}

func (c *ResultCache) saveDisk(e *CacheEntry) error {
	path := c.diskPath(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".entry-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(e); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (c *ResultCache) loadDisk(key string) (*CacheEntry, bool) {
	if c.dir == "" {
		return nil, false
	}
	f, err := os.Open(c.diskPath(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e CacheEntry
	if err := gob.NewDecoder(f).Decode(&e); err != nil || e.Key != key {
		return nil, false
	}
	return &e, true
}
