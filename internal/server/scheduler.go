package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"reusetool/pkg/client"
)

// JobStatus is the lifecycle state of a scheduled analysis. The type
// and its values live in pkg/client (they are part of the wire
// protocol); the server aliases them so scheduler code and API
// responses always agree.
type JobStatus = client.JobStatus

// Job lifecycle states, re-exported for the scheduler's callers.
const (
	JobQueued   = client.JobQueued
	JobRunning  = client.JobRunning
	JobDone     = client.JobDone
	JobFailed   = client.JobFailed
	JobCanceled = client.JobCanceled
)

// Submission errors.
var (
	ErrQueueFull = errors.New("server: job queue is full")
	ErrDraining  = errors.New("server: daemon is draining")
)

// Job is one scheduled analysis. The run closure is supplied by the
// server and does the actual pipeline work; the scheduler owns status
// transitions, the per-job deadline, and cancellation.
type Job struct {
	ID  string
	Key string

	// Timeout is the per-job deadline applied when the job starts
	// running (queue wait does not count against it).
	Timeout time.Duration

	run func(ctx context.Context) (*CacheEntry, error)

	mu        sync.Mutex
	status    JobStatus          // guarded by mu
	err       string             // guarded by mu
	result    *CacheEntry        // guarded by mu
	cacheHit  bool               // guarded by mu
	canceled  bool               // guarded by mu; cancel requested while still queued
	cancel    context.CancelFunc // guarded by mu
	submitted time.Time          // guarded by mu
	started   time.Time          // guarded by mu
	finished  time.Time          // guarded by mu
	done      chan struct{}
}

// Snapshot is a consistent copy of a job's externally visible state.
type Snapshot struct {
	ID        string
	Key       string
	Status    JobStatus
	Err       string
	Result    *CacheEntry
	CacheHit  bool
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Snapshot returns the job's current state under its lock.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.ID,
		Key:       j.Key,
		Status:    j.status,
		Err:       j.err,
		Result:    j.result,
		CacheHit:  j.cacheHit,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Scheduler runs jobs on a bounded worker pool fed by a FIFO queue.
// Submissions beyond the queue bound are rejected immediately
// (ErrQueueFull) rather than blocking the HTTP handler — back-pressure
// is the caller's signal to retry. Drain stops intake, lets queued and
// running jobs finish, and joins the workers.
type Scheduler struct {
	queue   chan *Job
	metrics *Metrics

	mu       sync.Mutex
	jobs     map[string]*Job // guarded by mu
	order    []string        // guarded by mu; job IDs in submission order, for pruning
	seq      uint64          // guarded by mu
	draining bool            // guarded by mu

	running sync.WaitGroup // one count per worker goroutine
	active  sync.Mutex
	activeN int // guarded by active

	defaultTimeout time.Duration
	maxJobs        int
}

// NewScheduler builds and starts a pool of workers. queueDepth bounds
// the FIFO; defaultTimeout applies to jobs submitted without their own.
func NewScheduler(workers, queueDepth int, defaultTimeout time.Duration, m *Metrics) *Scheduler {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if defaultTimeout <= 0 {
		defaultTimeout = 2 * time.Minute
	}
	if m == nil {
		m = NewMetrics()
	}
	s := &Scheduler{
		queue:          make(chan *Job, queueDepth),
		metrics:        m,
		jobs:           map[string]*Job{},
		defaultTimeout: defaultTimeout,
		maxJobs:        4096,
	}
	for i := 0; i < workers; i++ {
		s.running.Add(1)
		go s.worker()
	}
	return s
}

// NewJob allocates a job record in a terminal or schedulable state.
// Completed cache hits pass run==nil and are recorded done immediately;
// misses get queued by Submit.
func (s *Scheduler) NewJob(key string, timeout time.Duration, run func(ctx context.Context) (*CacheEntry, error)) *Job {
	if timeout <= 0 {
		timeout = s.defaultTimeout
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%08d", s.seq)
	j := &Job{
		ID:        id,
		Key:       key,
		Timeout:   timeout,
		run:       run,
		status:    JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.prune()
	s.mu.Unlock()
	return j
}

// prune drops the oldest terminal jobs once the registry exceeds
// maxJobs, bounding memory under sustained traffic. Caller holds s.mu.
//
//reuse:locked(mu)
func (s *Scheduler) prune() {
	for len(s.jobs) > s.maxJobs {
		pruned := false
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			j.mu.Lock()
			terminal := j.status == JobDone || j.status == JobFailed || j.status == JobCanceled
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything live; let the registry grow
		}
	}
}

// Complete marks a job done without scheduling it (cache-hit path).
func (s *Scheduler) Complete(j *Job, e *CacheEntry, hit bool) {
	j.mu.Lock()
	j.status = JobDone
	j.result = e
	j.cacheHit = hit
	j.started = j.submitted
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Submit queues a job for execution. It never blocks: a full queue
// returns ErrQueueFull and a draining scheduler ErrDraining, and the
// job is marked failed accordingly. The enqueue happens under the
// scheduler lock so it cannot race Drain's close of the queue.
func (s *Scheduler) Submit(j *Job) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(j, ErrDraining)
		return ErrDraining
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
		s.metrics.JobsSubmitted.Add(1)
		return nil
	default:
		s.mu.Unlock()
		s.reject(j, ErrQueueFull)
		return ErrQueueFull
	}
}

func (s *Scheduler) reject(j *Job, err error) {
	s.metrics.JobsRejected.Add(1)
	j.mu.Lock()
	j.status = JobFailed
	j.err = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Job looks a job up by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the live job records in submission order (the order
// slice is authoritative; pruned IDs are skipped).
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cancellation: a queued job is marked canceled and
// skipped when dequeued; a running job has its context canceled, which
// aborts the interpreter within one access batch. Returns false for
// unknown or already-terminal jobs.
func (s *Scheduler) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case JobQueued:
		j.canceled = true
		return true
	case JobRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// QueueDepth reports the jobs currently waiting in the FIFO.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Running reports the jobs currently executing.
func (s *Scheduler) Running() int {
	s.active.Lock()
	defer s.active.Unlock()
	return s.activeN
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake, waits for the queue to empty and every worker to
// finish, then returns. If ctx expires first, running jobs are canceled
// and Drain waits (briefly) for them to abort before returning ctx's
// error.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.running.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		// Force-cancel whatever is still running, then wait for the
		// workers to observe it.
		s.mu.Lock()
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.status == JobRunning && j.cancel != nil {
				j.cancel()
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		<-finished
		return ctx.Err()
	}
}

func (s *Scheduler) worker() {
	defer s.running.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job under its own timeout. The job context is
// deliberately rooted here rather than derived from the submitting HTTP
// request: a queued job must survive the submitter disconnecting.
//
//reuse:ctx-root
func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.canceled {
		j.status = JobCanceled
		j.err = context.Canceled.Error()
		j.finished = time.Now()
		j.mu.Unlock()
		s.metrics.JobsCanceled.Add(1)
		close(j.done)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), j.Timeout)
	j.status = JobRunning
	j.cancel = cancel
	j.started = time.Now()
	j.mu.Unlock()

	s.active.Lock()
	s.activeN++
	s.active.Unlock()

	start := time.Now()
	entry, err := j.run(ctx)
	s.metrics.AnalyzeNanos.Add(uint64(time.Since(start)))
	cancel()

	s.active.Lock()
	s.activeN--
	s.active.Unlock()

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = JobDone
		j.result = entry
		s.metrics.JobsCompleted.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.status = JobCanceled
		j.err = err.Error()
		s.metrics.JobsCanceled.Add(1)
	default:
		j.status = JobFailed
		j.err = err.Error()
		s.metrics.JobsFailed.Add(1)
	}
	j.mu.Unlock()
	close(j.done)
}
