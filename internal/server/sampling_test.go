package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestSamplingCacheKeysDistinct is the key-canonicalization contract:
// exact, fixed-rate, adaptive, and R=1 requests for the same program
// all key differently (a sampled estimate must never be served for an
// exact request, and R=1 runs the sampling machinery even though its
// numbers match exact), while spelling the default seed explicitly
// keys the same as leaving it zero.
func TestSamplingCacheKeysDistinct(t *testing.T) {
	reqs := map[string]AnalyzeRequest{
		"exact":    {Workload: "fig2"},
		"rate1":    {Workload: "fig2", SampleRate: 1},
		"rate8":    {Workload: "fig2", SampleRate: 8},
		"rate64":   {Workload: "fig2", SampleRate: 64},
		"adaptive": {Workload: "fig2", SampleRate: 8, SampleMaxBlocks: 4096},
		"seeded":   {Workload: "fig2", SampleRate: 8, SampleSeed: 7},
	}
	keys := map[string]string{}
	for name, req := range reqs {
		k, err := CacheKeyFor(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for other, ok := range keys {
			if ok == k {
				t.Errorf("%s and %s share cache key %s", name, other, k)
			}
		}
		keys[name] = k
	}

	// Normalization: seed 0 and the explicit default seed are the same
	// sample, so they must share a key.
	explicit, err := CacheKeyFor(AnalyzeRequest{
		Workload: "fig2", SampleRate: 8, SampleSeed: 0x9E3779B97F4A7C15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if explicit != keys["rate8"] {
		t.Error("explicit default seed keyed differently from seed 0")
	}
}

// TestAnalyzeSampledEndToEnd runs the daemon e2e required by the ISSUE:
// the same program submitted sampled and exact lands on distinct cache
// entries, the sampled report carries the sampling footer, a sampled
// resubmission is a cache hit, and the sampling gauges reflect the run.
func TestAnalyzeSampledEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	exact, status := postAnalyze(t, ts, AnalyzeRequest{Workload: "fig2"})
	if status != http.StatusAccepted {
		t.Fatalf("exact status %d", status)
	}
	exactDone := pollDone(t, ts, exact.ID)
	if exactDone.Status != JobDone {
		t.Fatalf("exact job: %s (%s)", exactDone.Status, exactDone.Error)
	}
	if strings.Contains(exactDone.Report, "Sampling:") {
		t.Fatal("exact report carries a sampling footer")
	}

	sampled := AnalyzeRequest{Workload: "fig2", SampleRate: 8}
	cold, status := postAnalyze(t, ts, sampled)
	if status != http.StatusAccepted {
		t.Fatalf("sampled cold status %d, want 202 (a sampled submission must not hit the exact entry)", status)
	}
	coldDone := pollDone(t, ts, cold.ID)
	if coldDone.Status != JobDone {
		t.Fatalf("sampled job: %s (%s)", coldDone.Status, coldDone.Error)
	}
	if coldDone.Key == exactDone.Key {
		t.Fatal("sampled and exact runs share a cache key")
	}
	if !strings.Contains(coldDone.Report, "Sampling:") {
		t.Fatalf("sampled report missing footer:\n%s", coldDone.Report)
	}
	if !strings.Contains(coldDone.Report, "rate 1/8 (fixed)") {
		t.Fatalf("sampled footer missing rate:\n%s", coldDone.Report)
	}

	warm, status := postAnalyze(t, ts, sampled)
	if status != http.StatusOK || !warm.CacheHit {
		t.Fatalf("sampled resubmission missed the cache (status %d, hit %v)", status, warm.CacheHit)
	}
	if warm.Report != coldDone.Report {
		t.Fatal("sampled warm report differs from cold")
	}

	if v := metricValue(t, ts, "reusetoold_sampled_jobs_total"); v != 1 {
		t.Errorf("sampled_jobs_total = %g, want 1 (the warm hit must not re-count)", v)
	}
	if v := metricValue(t, ts, "reusetoold_sampling_effective_rate"); v != 8 {
		t.Errorf("sampling_effective_rate = %g, want 8", v)
	}
	if v := metricValue(t, ts, "reusetoold_sampled_blocks"); v <= 0 {
		t.Errorf("sampled_blocks = %g, want > 0", v)
	}
}

// TestAnalyzeSamplingRejected covers the 400 paths the sampling fields
// add: non-power-of-two rate, static mode, and artifact restore.
func TestAnalyzeSamplingRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	e := collectEntry(t, key(1))
	for name, req := range map[string]AnalyzeRequest{
		"bad rate":          {Workload: "fig1a", SampleRate: 3},
		"rate too high":     {Workload: "fig1a", SampleRate: 1 << 21},
		"tiny cap":          {Workload: "fig1a", SampleMaxBlocks: 4},
		"static sampled":    {Workload: "fig1a", Mode: "static", SampleRate: 8},
		"artifact sampled":  {Workload: "fig2", Artifact: e.Artifact, SampleRate: 8},
		"artifact adaptive": {Workload: "fig2", Artifact: e.Artifact, SampleMaxBlocks: 4096},
	} {
		if _, status := postAnalyze(t, ts, req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}
