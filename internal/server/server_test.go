package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reusetool/pkg/client"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAnalyze(t *testing.T, ts *httptest.Server, req AnalyzeRequest) (*JobJSON, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		// Non-2xx responses carry the structured error envelope; surface
		// the message through the job's Error field for assertions.
		var env client.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decode error envelope (status %d): %v", resp.StatusCode, err)
		}
		if env.Err.Code == "" {
			t.Fatalf("status %d response missing error code", resp.StatusCode)
		}
		return &JobJSON{Error: env.Err.Message}, resp.StatusCode
	}
	var j JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return &j, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) *JobJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return &j
}

func pollDone(t *testing.T, ts *httptest.Server, id string) *JobJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		j := getJob(t, ts, id)
		switch j.Status {
		case JobDone, JobFailed, JobCanceled:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestAnalyzeWarmCacheSkipsInterpreter is the acceptance criterion: a
// resubmission of an identical request is served from the
// content-addressed cache — observable via the cache-hit counter — and
// its report bytes equal the cold-run bytes, for fig1a, fig2 and
// sweep3d.
func TestAnalyzeWarmCacheSkipsInterpreter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i, workload := range []string{"fig1a", "fig2", "sweep3d"} {
		req := AnalyzeRequest{Workload: workload}
		cold, status := postAnalyze(t, ts, req)
		if status != http.StatusAccepted {
			t.Fatalf("%s: cold status %d", workload, status)
		}
		coldDone := pollDone(t, ts, cold.ID)
		if coldDone.Status != JobDone {
			t.Fatalf("%s: cold job %s: %s", workload, coldDone.Status, coldDone.Error)
		}
		if coldDone.CacheHit {
			t.Fatalf("%s: cold run reported a cache hit", workload)
		}
		if coldDone.Report == "" || len(coldDone.Result) == 0 {
			t.Fatalf("%s: cold result incomplete", workload)
		}

		warm, status := postAnalyze(t, ts, req)
		if status != http.StatusOK {
			t.Fatalf("%s: warm status %d, want 200", workload, status)
		}
		if !warm.CacheHit || warm.Status != JobDone {
			t.Fatalf("%s: warm submission not served from cache (%+v)", workload, warm)
		}
		if warm.Report != coldDone.Report {
			t.Fatalf("%s: warm report bytes differ from cold", workload)
		}
		if !bytes.Equal(warm.Result, coldDone.Result) {
			t.Fatalf("%s: warm JSON differs from cold", workload)
		}
		if hits := metricValue(t, ts, "reusetoold_cache_hits_total"); hits != float64(i+1) {
			t.Fatalf("cache_hits_total = %g after %d warm submissions", hits, i+1)
		}
	}
	if misses := metricValue(t, ts, "reusetoold_cache_misses_total"); misses != 3 {
		t.Fatalf("cache_misses_total = %g, want 3", misses)
	}
}

// TestAnalyzeColdRunsDeterministic runs the same request on two
// independent daemons and requires byte-identical reports — the
// property that makes the cache safe to share.
func TestAnalyzeColdRunsDeterministic(t *testing.T) {
	_, ts1 := newTestServer(t, Config{})
	_, ts2 := newTestServer(t, Config{})
	req := AnalyzeRequest{Workload: "fig2"}
	j1, _ := postAnalyze(t, ts1, req)
	j2, _ := postAnalyze(t, ts2, req)
	d1, d2 := pollDone(t, ts1, j1.ID), pollDone(t, ts2, j2.ID)
	if d1.Status != JobDone || d2.Status != JobDone {
		t.Fatalf("jobs: %s / %s", d1.Status, d2.Status)
	}
	if d1.Report != d2.Report || !bytes.Equal(d1.Result, d2.Result) {
		t.Fatal("two daemons produced different bytes for the same request")
	}
	if d1.Key != d2.Key {
		t.Fatalf("cache keys differ: %s vs %s", d1.Key, d2.Key)
	}
}

// TestAnalyzeProgramSourceSharesKeyWithReformattedSource checks that
// the cache key is computed over canonical IR bytes: the same program
// with different indentation and comments hits the same entry. (Source
// *line numbers* are semantic — they name loops in reports and are
// preserved by lang.Format — so the reformatting below keeps every
// statement on its original line.)
func TestAnalyzeProgramSourceSharesKeyWithReformattedSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `program p
param N 64
array A f64 [N]

routine main {
  for i = 0 .. N-1 {
    access A[i]
  }
}
`
	messy := strings.ReplaceAll(src, "  ", "\t \t ") // reindent
	messy = strings.Replace(messy, "program p", "program p  # a comment", 1)
	messy = strings.Replace(messy, "access A[i]", "access   A[ i ]  # same access", 1)
	messy += "# trailing comment, no newline"

	j1, _ := postAnalyze(t, ts, AnalyzeRequest{Program: src})
	d1 := pollDone(t, ts, j1.ID)
	if d1.Status != JobDone {
		t.Fatalf("cold program job: %s (%s)", d1.Status, d1.Error)
	}
	j2, status := postAnalyze(t, ts, AnalyzeRequest{Program: messy})
	if status != http.StatusOK || !j2.CacheHit {
		t.Fatalf("reformatted source missed the cache (status %d, hit %v)", status, j2.CacheHit)
	}
	if j2.Key != d1.Key {
		t.Fatalf("canonicalization failed: keys %s vs %s", j2.Key, d1.Key)
	}
}

// TestAnalyzeOptionsChangeKey ensures every result-shaping option feeds
// the key: same program, different params/hierarchy/level must miss.
func TestAnalyzeOptionsChangeKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := AnalyzeRequest{Workload: "fig2"}
	j, _ := postAnalyze(t, ts, base)
	pollDone(t, ts, j.ID)

	variants := []AnalyzeRequest{
		{Workload: "fig2", Hierarchy: "full"},
		{Workload: "fig2", Level: "TLB"},
		{Workload: "fig2", MinShare: 0.5},
		{Workload: "fig2", Mode: "static"},
	}
	for i, v := range variants {
		jv, status := postAnalyze(t, ts, v)
		if status == http.StatusOK && jv.CacheHit {
			t.Fatalf("variant %d shared the base cache entry", i)
		}
		pollDone(t, ts, jv.ID)
	}
}

// TestAnalyzeStaticMode runs the symbolic pipeline through the API.
func TestAnalyzeStaticMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j, status := postAnalyze(t, ts, AnalyzeRequest{Workload: "fig1a", Mode: "static"})
	if status != http.StatusAccepted {
		t.Fatalf("status %d", status)
	}
	d := pollDone(t, ts, j.ID)
	if d.Status != JobDone {
		t.Fatalf("static job: %s (%s)", d.Status, d.Error)
	}
	if !strings.Contains(d.Report, "MISSES") {
		t.Fatalf("static report looks empty:\n%s", d.Report)
	}
}

// TestAnalyzeBadRequests covers the 400 paths.
func TestAnalyzeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]AnalyzeRequest{
		"no source":        {},
		"two sources":      {Workload: "fig1a", Program: "program p\nroutine main {}\n"},
		"unknown workload": {Workload: "nope"},
		"bad mode":         {Workload: "fig1a", Mode: "quantum"},
		"bad hierarchy":    {Workload: "fig1a", Hierarchy: "m1"},
		"bad level":        {Workload: "fig1a", Level: "L9"},
		"bad param":        {Workload: "fig1a", Params: map[string]int64{"nope": 1}},
		"negative timeout": {Workload: "fig1a", TimeoutMS: -5},
		"bad program":      {Program: "this is not a loop program"},
	} {
		if _, status := postAnalyze(t, ts, req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
	// Unknown job.
	resp, err := http.Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
}

// TestJobDeadlineThroughAPI submits a huge workload with a tiny
// timeout_ms and expects a canceled job, not a hung daemon.
func TestJobDeadlineThroughAPI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	j, status := postAnalyze(t, ts, AnalyzeRequest{
		Workload:  "sweep3d",
		Params:    map[string]int64{"it": 40, "jt": 40, "kt": 40, "ts": 8},
		TimeoutMS: 25,
	})
	if status != http.StatusAccepted {
		t.Fatalf("status %d", status)
	}
	d := pollDone(t, ts, j.ID)
	if d.Status != JobCanceled {
		t.Fatalf("status %s (%s), want canceled", d.Status, d.Error)
	}
}

// TestCancelRunningJobThroughAPI exercises DELETE /v1/jobs/{id}.
func TestCancelRunningJobThroughAPI(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	j, _ := postAnalyze(t, ts, AnalyzeRequest{
		Workload: "sweep3d",
		Params:   map[string]int64{"it": 40, "jt": 40, "kt": 40, "ts": 8},
	})
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	d := pollDone(t, ts, j.ID)
	if d.Status != JobCanceled {
		t.Fatalf("status %s, want canceled", d.Status)
	}
}

// TestHealthzAndDrain checks the health endpoint flips to draining and
// the server refuses new work during shutdown.
func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d", resp.StatusCode)
	}
	if _, status := postAnalyze(t, ts, AnalyzeRequest{Workload: "fig1a"}); status != http.StatusServiceUnavailable {
		t.Fatalf("draining analyze status %d", status)
	}
}

// TestArtifactSubmission posts a saved persist stream alongside the
// program and expects the daemon to rebuild the report without
// re-running the interpreter.
func TestArtifactSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Produce an artifact via a dynamic run.
	e := collectEntry(t, key(1))
	j, status := postAnalyze(t, ts, AnalyzeRequest{Workload: "fig2", Artifact: e.Artifact})
	if status != http.StatusAccepted {
		t.Fatalf("status %d", status)
	}
	d := pollDone(t, ts, j.ID)
	if d.Status != JobDone {
		t.Fatalf("artifact job: %s (%s)", d.Status, d.Error)
	}
	if !strings.Contains(d.Report, "MISSES") {
		t.Fatal("artifact-based report looks empty")
	}
}
