package reusecheck

import (
	"fmt"

	"reusetool/internal/ir"
)

// Ival is an element of the interval lattice over the integers: a
// possibly half-open range [Lo,Hi] where each endpoint is present only
// when its OK flag is set (an absent endpoint means -inf / +inf). The
// lattice top is the fully unbounded interval; there is no bottom —
// the abstract interpreter never tracks unreachable states through
// values, it tracks them through the walker's reachability flag.
type Ival struct {
	Lo, Hi     int64
	LoOK, HiOK bool
}

// top is the unbounded interval.
func top() Ival { return Ival{} }

// point is the singleton interval [v,v].
func point(v int64) Ival { return Ival{Lo: v, Hi: v, LoOK: true, HiOK: true} }

// Const reports the single value of a singleton interval.
func (iv Ival) Const() (int64, bool) {
	if iv.LoOK && iv.HiOK && iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// Bounded reports whether both endpoints are present.
func (iv Ival) Bounded() bool { return iv.LoOK && iv.HiOK }

// String renders the interval for diagnostics and tests.
func (iv Ival) String() string {
	lo, hi := "-inf", "+inf"
	if iv.LoOK {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.HiOK {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

// hull is the lattice join: the smallest interval containing both.
func hull(a, b Ival) Ival {
	var out Ival
	if a.LoOK && b.LoOK {
		out.LoOK = true
		out.Lo = min64(a.Lo, b.Lo)
	}
	if a.HiOK && b.HiOK {
		out.HiOK = true
		out.Hi = max64(a.Hi, b.Hi)
	}
	return out
}

// widen is the standard interval widening: any endpoint that moved
// between consecutive iterates jumps straight to infinity, cutting the
// lattice's infinite ascending chains to length one. The walker applies
// it by havocking loop-mutated bindings at loop entry (see walk.go).
func widen(prev, next Ival) Ival {
	out := next
	if !prev.LoOK || (next.LoOK && next.Lo < prev.Lo) {
		out.LoOK = false
	}
	if !prev.HiOK || (next.HiOK && next.Hi > prev.Hi) {
		out.HiOK = false
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// neg negates an interval.
func neg(a Ival) Ival {
	return Ival{Lo: -a.Hi, Hi: -a.Lo, LoOK: a.HiOK, HiOK: a.LoOK}
}

func addIval(a, b Ival) Ival {
	var out Ival
	if a.LoOK && b.LoOK {
		out.LoOK = true
		out.Lo = a.Lo + b.Lo
	}
	if a.HiOK && b.HiOK {
		out.HiOK = true
		out.Hi = a.Hi + b.Hi
	}
	return out
}

func subIval(a, b Ival) Ival { return addIval(a, neg(b)) }

// scaleIval multiplies an interval by a constant.
func scaleIval(a Ival, k int64) Ival {
	switch {
	case k == 0:
		return point(0)
	case k > 0:
		return Ival{Lo: a.Lo * k, Hi: a.Hi * k, LoOK: a.LoOK, HiOK: a.HiOK}
	default:
		return Ival{Lo: a.Hi * k, Hi: a.Lo * k, LoOK: a.HiOK, HiOK: a.LoOK}
	}
}

func mulIval(a, b Ival) Ival {
	if k, ok := a.Const(); ok {
		return scaleIval(b, k)
	}
	if k, ok := b.Const(); ok {
		return scaleIval(a, k)
	}
	if !a.Bounded() || !b.Bounded() {
		return top()
	}
	c := [4]int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	out := point(c[0])
	for _, v := range c[1:] {
		out.Lo = min64(out.Lo, v)
		out.Hi = max64(out.Hi, v)
	}
	return out
}

// divIval divides by a constant divisor; any other divisor loses all
// precision. Truncated division is monotone in the dividend, so the
// endpoints map to endpoints.
func divIval(a, b Ival) Ival {
	k, ok := b.Const()
	if !ok || k == 0 {
		return top()
	}
	if k < 0 {
		a, k = neg(a), -k
	}
	return Ival{Lo: a.Lo / k, Hi: a.Hi / k, LoOK: a.LoOK, HiOK: a.HiOK}
}

// modIval bounds a modulo by a constant positive modulus.
func modIval(a, b Ival) Ival {
	m, ok := b.Const()
	if !ok || m <= 0 {
		return top()
	}
	if a.Bounded() && a.Lo >= 0 && a.Hi < m {
		return a
	}
	if a.LoOK && a.Lo >= 0 {
		return Ival{Lo: 0, Hi: m - 1, LoOK: true, HiOK: true}
	}
	return Ival{Lo: -(m - 1), Hi: m - 1, LoOK: true, HiOK: true}
}

func minIval(a, b Ival) Ival {
	var out Ival
	if a.LoOK && b.LoOK {
		out.LoOK = true
		out.Lo = min64(a.Lo, b.Lo)
	}
	// min(x,y) <= x and <= y: either upper bound alone caps the result.
	switch {
	case a.HiOK && b.HiOK:
		out.HiOK = true
		out.Hi = min64(a.Hi, b.Hi)
	case a.HiOK:
		out.HiOK = true
		out.Hi = a.Hi
	case b.HiOK:
		out.HiOK = true
		out.Hi = b.Hi
	}
	return out
}

func maxIval(a, b Ival) Ival {
	return neg(minIval(neg(a), neg(b)))
}

// evalIval abstractly evaluates an expression under an interval
// environment. Unknown variables and indirect loads evaluate to top.
func evalIval(e ir.Expr, env map[string]Ival) Ival {
	switch x := e.(type) {
	case ir.Const:
		return point(int64(x))
	case *ir.Var:
		if iv, ok := env[x.Name]; ok {
			return iv
		}
		return top()
	case *ir.Bin:
		l := evalIval(x.L, env)
		r := evalIval(x.R, env)
		switch x.Op {
		case ir.OpAdd:
			return addIval(l, r)
		case ir.OpSub:
			return subIval(l, r)
		case ir.OpMul:
			return mulIval(l, r)
		case ir.OpDiv:
			return divIval(l, r)
		case ir.OpMod:
			return modIval(l, r)
		case ir.OpMin:
			return minIval(l, r)
		case ir.OpMax:
			return maxIval(l, r)
		}
	case *ir.Load:
		return top()
	}
	return top()
}

// condDecide decides a comparison between two intervals: +1 when it
// always holds, -1 when it never holds, 0 when undecided.
func condDecide(op ir.CmpOp, l, r Ival) int {
	lt := func(a, b Ival) int { // a < b
		if a.HiOK && b.LoOK && a.Hi < b.Lo {
			return 1
		}
		if a.LoOK && b.HiOK && a.Lo >= b.Hi {
			return -1
		}
		return 0
	}
	le := func(a, b Ival) int { // a <= b
		if a.HiOK && b.LoOK && a.Hi <= b.Lo {
			return 1
		}
		if a.LoOK && b.HiOK && a.Lo > b.Hi {
			return -1
		}
		return 0
	}
	switch op {
	case ir.CmpLt:
		return lt(l, r)
	case ir.CmpLe:
		return le(l, r)
	case ir.CmpGt:
		return lt(r, l)
	case ir.CmpGe:
		return le(r, l)
	case ir.CmpEq:
		if lc, ok := l.Const(); ok {
			if rc, ok := r.Const(); ok && lc == rc {
				return 1
			}
		}
		if disjoint(l, r) {
			return -1
		}
		return 0
	case ir.CmpNe:
		if disjoint(l, r) {
			return 1
		}
		if lc, ok := l.Const(); ok {
			if rc, ok := r.Const(); ok && lc == rc {
				return -1
			}
		}
		return 0
	}
	return 0
}

// disjoint reports whether two intervals provably share no value.
func disjoint(l, r Ival) bool {
	if l.HiOK && r.LoOK && l.Hi < r.Lo {
		return true
	}
	if l.LoOK && r.HiOK && l.Lo > r.Hi {
		return true
	}
	return false
}

// refine tightens the interval of a variable that a branch condition
// constrains: inside the Then branch of "if v < e" the walker may
// assume v < e. Only single-variable-vs-expression conditions refine;
// anything else returns the environment unchanged. negate applies the
// complement (the Else branch).
func refine(env map[string]Ival, c ir.Cond, negate bool) map[string]Ival {
	v, ok := c.L.(*ir.Var)
	bound := c.R
	op := c.Op
	if !ok {
		v, ok = c.R.(*ir.Var)
		if !ok {
			return env
		}
		bound = c.L
		op = flipCmp(c.Op)
	}
	if negate {
		op = negateCmp(op)
	}
	b := evalIval(bound, env)
	cur, okc := env[v.Name]
	if !okc {
		cur = top()
	}
	out := cur
	switch op {
	case ir.CmpLt: // v < b  =>  v <= b.Hi-1
		if b.HiOK {
			out = clampHi(out, b.Hi-1)
		}
	case ir.CmpLe:
		if b.HiOK {
			out = clampHi(out, b.Hi)
		}
	case ir.CmpGt:
		if b.LoOK {
			out = clampLo(out, b.Lo+1)
		}
	case ir.CmpGe:
		if b.LoOK {
			out = clampLo(out, b.Lo)
		}
	case ir.CmpEq:
		if b.LoOK {
			out = clampLo(out, b.Lo)
		}
		if b.HiOK {
			out = clampHi(out, b.Hi)
		}
	case ir.CmpNe:
		return env // nothing useful to refine
	}
	if out == cur {
		return env
	}
	next := make(map[string]Ival, len(env)+1)
	for k, iv := range env {
		next[k] = iv
	}
	next[v.Name] = out
	return next
}

func clampHi(iv Ival, hi int64) Ival {
	if !iv.HiOK || hi < iv.Hi {
		iv.HiOK = true
		iv.Hi = hi
	}
	return iv
}

func clampLo(iv Ival, lo int64) Ival {
	if !iv.LoOK || lo > iv.Lo {
		iv.LoOK = true
		iv.Lo = lo
	}
	return iv
}

// flipCmp mirrors an operator across its operands (a op b == b flip(op) a).
func flipCmp(op ir.CmpOp) ir.CmpOp {
	switch op {
	case ir.CmpLt:
		return ir.CmpGt
	case ir.CmpLe:
		return ir.CmpGe
	case ir.CmpGt:
		return ir.CmpLt
	case ir.CmpGe:
		return ir.CmpLe
	}
	return op
}

// negateCmp complements an operator.
func negateCmp(op ir.CmpOp) ir.CmpOp {
	switch op {
	case ir.CmpLt:
		return ir.CmpGe
	case ir.CmpLe:
		return ir.CmpGt
	case ir.CmpGt:
		return ir.CmpLe
	case ir.CmpGe:
		return ir.CmpLt
	case ir.CmpEq:
		return ir.CmpNe
	case ir.CmpNe:
		return ir.CmpEq
	}
	return op
}
