// Package reusecheck statically pinpoints reuse defects and
// missed-reuse opportunities in finalized IR programs.
//
// It layers a small dataflow/abstract-interpretation framework over the
// structured IR — interval analysis on loop bounds and affine
// subscripts (interval.go), plus a one-pass reaching-store and
// available-region walk per loop nest (walk.go) — and uses it to power
// a diagnostic suite:
//
//	dead-store       a stored value is overwritten before any read (defect)
//	dead-guard       an If condition is provably constant (defect)
//	invariant-load   a load does not vary with its innermost loop:
//	                 hoistable into a scalar (opportunity)
//	redundant-region a read re-sweeps an identical array region on every
//	                 iteration of an outer loop (opportunity)
//	layout-mismatch  the innermost loop walks a large stride while another
//	                 nest loop walks a small one (opportunity)
//	bounds-proved    every subscript is provably within the array extent
//	                 (note)
//
// plus everything internal/depend.Check reports (oob, uninit-data,
// unused-param, empty-loop — all defects).
//
// Every opportunity is ranked by the predicted miss reduction obtained
// from internal/staticreuse + internal/metrics at one cache level, and
// cross-checked against internal/depend for the legality of the fixing
// transformation, so output reads "saves ~N L2 misses, interchange
// legal".
package reusecheck

import (
	"encoding/json"
	"fmt"
	"sort"

	"reusetool/internal/cache"
	"reusetool/internal/depend"
	"reusetool/internal/ir"
)

// Severity classifies a diagnostic.
type Severity uint8

// Severities. Defects and opportunities count as findings (nonzero
// checker exit); notes are informational.
const (
	SevDefect Severity = iota
	SevOpportunity
	SevNote
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevDefect:
		return "defect"
	case SevOpportunity:
		return "opportunity"
	case SevNote:
		return "note"
	}
	return "?"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "defect":
		*s = SevDefect
	case "opportunity":
		*s = SevOpportunity
	case "note":
		*s = SevNote
	default:
		return fmt.Errorf("reusecheck: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding, anchored to a source position. Opportunity
// diagnostics additionally carry the predicted miss reduction at one
// cache level, the transformation that realizes it, and the dependence
// analyzer's legality verdict for that transformation.
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Msg      string   `json:"msg"`
	// Hint is a fix-it suggestion.
	Hint string `json:"hint,omitempty"`
	// MissDelta is the predicted miss reduction at Level (opportunities).
	MissDelta float64 `json:"miss_delta,omitempty"`
	Level     string  `json:"level,omitempty"`
	// Transform names the transformation the hint proposes ("hoist",
	// "interchange", "time-skew").
	Transform string `json:"transform,omitempty"`
	// Legality is the depend verdict on Transform: "legal", "illegal" or
	// "unknown".
	Legality     string `json:"legality,omitempty"`
	LegalityNote string `json:"legality_note,omitempty"`
}

// String renders the diagnostic in file:line: style, with the ranked
// opportunity suffix the paper's workflow reads: "saves ~N L2 misses,
// interchange legal".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Code, d.Msg)
	if d.Severity == SevOpportunity {
		s += fmt.Sprintf(" [saves ~%.0f %s misses, %s %s]", d.MissDelta, d.Level, d.Transform, d.Legality)
	}
	if d.Hint != "" {
		s += " (fix: " + d.Hint + ")"
	}
	return s
}

// Options configures a check run.
type Options struct {
	// Params overrides default parameter values.
	Params map[string]int64
	// Initialized marks data arrays with an explicit init declaration
	// (lang.FileMeta.Inited).
	Initialized map[*ir.Array]bool
	// AssumeInitialized suppresses the uninitialized-data check for
	// workloads whose init runs as opaque Go code.
	AssumeInitialized bool
	// ParamLines gives declaration lines for parameters.
	ParamLines map[string]int
	// File is the fallback file name for findings without a position.
	File string
	// Hier is the cache hierarchy miss deltas are predicted on
	// (default cache.ScaledItanium2).
	Hier *cache.Hierarchy
	// Level is the hierarchy level miss deltas are reported at
	// (default "L2").
	Level string
	// HistRes is the static estimator's histogram resolution (0 =
	// default).
	HistRes int
}

// Check runs every static check on a finalized program: the dependence
// checker's defect suite, the abstract-interpretation defect suite
// (dead stores, dead guards), the ranked opportunity suite, and the
// provable-bounds notes. The result is deduplicated and sorted by
// file:line:code:msg, so repeated runs are byte-reproducible.
func Check(info *ir.Info, opts Options) []Diagnostic {
	if opts.Hier == nil {
		opts.Hier = cache.ScaledItanium2()
	}
	if opts.Level == "" {
		opts.Level = "L2"
	}

	params := map[string]int64{}
	for k, v := range info.Prog.Defaults {
		params[k] = v
	}
	for k, v := range opts.Params {
		params[k] = v
	}

	fallback := opts.File
	if fallback == "" && info.Prog.Main != nil {
		fallback = info.Prog.Main.File
	}
	fileOf := func(rt *ir.Routine) string {
		if rt != nil && rt.File != "" {
			return rt.File
		}
		return fallback
	}

	var out []Diagnostic
	for _, d := range depend.Check(info, depend.CheckOptions{
		Params:            opts.Params,
		Initialized:       opts.Initialized,
		AssumeInitialized: opts.AssumeInitialized,
		ParamLines:        opts.ParamLines,
		File:              opts.File,
	}) {
		out = append(out, Diagnostic{
			File:     d.File,
			Line:     d.Line,
			Code:     d.Code,
			Severity: SevDefect,
			Msg:      d.Msg,
		})
	}

	w := newWalker(info, params, fileOf)
	w.run()
	out = append(out, w.diags...)

	// Provable-bounds notes.
	for _, fact := range w.facts {
		if fact == nil || fact.dead || !fact.inBounds {
			continue
		}
		out = append(out, Diagnostic{
			File:     fileOf(fact.routine),
			Line:     fact.ref.Line,
			Code:     "bounds-proved",
			Severity: SevNote,
			Msg:      fmt.Sprintf("every subscript of %s is provably in bounds", fact.ref.Name()),
		})
	}

	out = append(out, opportunities(info, w, opts, params, fileOf)...)

	return Sort(out)
}

// Sort deduplicates diagnostics and orders them by file, line, code and
// message — the canonical byte-reproducible order the CLI prints and
// the golden tests pin. It is exported so callers merging diagnostics
// from several targets can re-establish the invariant.
func Sort(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := out[len(out)-1]
			if p.File == d.File && p.Line == d.Line && p.Code == d.Code && p.Msg == d.Msg {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// Findings counts the diagnostics that affect the checker's exit code:
// defects and opportunities, not notes.
func Findings(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity != SevNote {
			n++
		}
	}
	return n
}
