package reusecheck

import (
	"fmt"

	"reusetool/internal/depend"
	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/metrics"
	"reusetool/internal/staticreuse"
	"reusetool/internal/symbolic"
	"reusetool/internal/trace"
)

// missModel is the static miss prediction the opportunity detectors
// rank with: per-(reference, carrying-scope) pattern misses and
// per-reference totals at one cache level, from the same
// staticreuse -> metrics pipeline the -static mode runs.
type missModel struct {
	level      string
	blockBytes int64
	patterns   map[patternKey]float64
	byRef      map[trace.RefID]float64
	refTotal   func(trace.RefID) float64
	ok         bool
}

type patternKey struct {
	ref   trace.RefID
	carry trace.ScopeID
}

func buildMissModel(info *ir.Info, opts Options) missModel {
	m := missModel{level: opts.Level, patterns: map[patternKey]float64{}, byRef: map[trace.RefID]float64{}}
	lvl := opts.Hier.Level(opts.Level)
	if lvl == nil {
		return m
	}
	m.blockBytes = int64(lvl.LineSize())
	est, err := staticreuse.Estimate(info, opts.Hier, staticreuse.Options{Params: opts.Params, HistRes: opts.HistRes})
	if err != nil {
		return m
	}
	rep, err := metrics.Build(info, est.Collector, est.Static, opts.Hier, metrics.SetAssoc)
	if err != nil {
		return m
	}
	lr := rep.Level(opts.Level)
	if lr == nil {
		return m
	}
	for _, p := range lr.Patterns {
		m.patterns[patternKey{ref: p.Ref, carry: p.Carrying}] += p.Misses
	}
	for id, misses := range lr.MissesByRef {
		m.byRef[id] = misses
	}
	m.refTotal = est.Stats.RefTotal
	m.ok = true
	return m
}

// opportunities runs the three opportunity detectors over the walker's
// reference facts: loop-invariant loads, redundant region re-sweeps,
// and layout-mismatched access orders. Each diagnostic carries the
// predicted miss reduction and the legality verdict of the fixing
// transformation.
func opportunities(info *ir.Info, w *walker, opts Options, params map[string]int64,
	fileOf func(*ir.Routine) string) []Diagnostic {

	mach, err := interp.Layout(info, params)
	if err != nil {
		return nil // no layout, no address forms: defects-only degraded mode
	}
	model := buildMissModel(info, opts)
	deps := depend.Analyze(info, opts.Params)

	strideCache := map[*ir.Array][]int64{}
	stridesOf := func(a *ir.Array) []int64 {
		if s, ok := strideCache[a]; ok {
			return s
		}
		s := make([]int64, a.Rank())
		for d := range s {
			s[d] = mach.ArrayStride(a, d)
		}
		strideCache[a] = s
		return s
	}

	var out []Diagnostic
	for id := range info.Refs {
		fact := w.factByID(trace.RefID(id))
		if fact == nil || fact.dead || fact.guarded || len(fact.nest) == 0 {
			continue
		}
		ref := fact.ref
		addr := symbolic.RefAddress(&ir.Ref{Array: ref.Array, Index: fact.subs}, stridesOf(ref.Array))
		strides := make([]symbolic.Stride, len(fact.nest))
		for i, l := range fact.nest {
			strides[i] = symbolic.StrideWRT(addr, l.Var.Name, loopStep(l))
		}
		innermost := fact.nest[len(fact.nest)-1]
		inner := strides[len(strides)-1]

		if d, ok := invariantLoad(w, model, deps, fact, innermost, inner, fileOf); ok {
			out = append(out, d)
		}
		if d, ok := redundantRegion(w, model, deps, fact, strides, fileOf); ok {
			out = append(out, d)
		}
		if d, ok := layoutMismatch(model, deps, fact, strides, inner, fileOf); ok {
			out = append(out, d)
		}
	}
	return out
}

func loopStep(l *ir.Loop) int64 { return int64(l.Step.(ir.Const)) }

// invariantLoad flags reads whose address does not vary with the
// innermost loop: the value can be hoisted into a scalar before the
// loop, eliminating every repeated touch the loop carries.
func invariantLoad(w *walker, model missModel, deps *depend.Analysis, fact *refFact,
	innermost *ir.Loop, inner symbolic.Stride, fileOf func(*ir.Routine) string) (Diagnostic, bool) {

	if fact.ref.Write || inner.Class != symbolic.StrideZero {
		return Diagnostic{}, false
	}
	if !w.loops[innermost].trips2 {
		return Diagnostic{}, false // a one-trip loop gains nothing
	}
	legality, note := hoistVerdict(deps, fact.ref, innermost)
	return Diagnostic{
		File:     fileOf(fact.routine),
		Line:     fact.ref.Line,
		Code:     "invariant-load",
		Severity: SevOpportunity,
		Msg: fmt.Sprintf("%s is invariant in innermost loop %s (line %d)",
			fact.ref.Name(), innermost.Var.Name, innermost.Line),
		Hint:         fmt.Sprintf("hoist the load into a scalar before the %s loop", innermost.Var.Name),
		MissDelta:    model.patterns[patternKey{ref: fact.ref.ID(), carry: innermost.Scope()}],
		Level:        model.level,
		Transform:    "hoist",
		Legality:     legality.String(),
		LegalityNote: note,
	}, true
}

// hoistVerdict decides whether hoisting a load out of a loop preserves
// the values read: legal unless some write to the same array may touch
// the loaded region during the loop's execution — i.e. the dependence
// analyzer reports a non-input dependence with the loop among its
// common nest.
func hoistVerdict(deps *depend.Analysis, ref *ir.Ref, loop *ir.Loop) (depend.Legality, string) {
	verdict := depend.Legal
	note := "no write aliases the loaded region inside the loop"
	for _, d := range deps.Deps {
		if d.Src != ref && d.Dst != ref {
			continue
		}
		if d.Kind == depend.Input {
			continue
		}
		if !loopIn(d.Loops, loop) {
			continue
		}
		if d.Unknown {
			if verdict == depend.Legal {
				verdict = depend.LegalityUnknown
				note = fmt.Sprintf("undecided dependence: %s", d)
			}
			continue
		}
		return depend.Illegal, fmt.Sprintf("blocked by %s", d)
	}
	return verdict, note
}

func loopIn(loops []*ir.Loop, l *ir.Loop) bool {
	for _, x := range loops {
		if x == l {
			return true
		}
	}
	return false
}

// redundantRegion flags reads that re-sweep an identical array region
// on every iteration of an outer loop (the address is independent of
// that loop while inner loops still move it): the paper's Table I
// temporal-reuse targets. Only the outermost such loop is reported.
func redundantRegion(w *walker, model missModel, deps *depend.Analysis, fact *refFact,
	strides []symbolic.Stride, fileOf func(*ir.Routine) string) (Diagnostic, bool) {

	if fact.ref.Write {
		return Diagnostic{}, false
	}
	for i := 0; i < len(fact.nest)-1; i++ {
		if strides[i].Class != symbolic.StrideZero {
			continue
		}
		carrier := fact.nest[i]
		if !w.loops[carrier].trips2 {
			continue
		}
		moving := false
		for j := i + 1; j < len(fact.nest); j++ {
			if !(strides[j].Class == symbolic.StrideZero ||
				(strides[j].Class == symbolic.StrideConst && strides[j].Bytes == 0)) {
				moving = true
				break
			}
		}
		if !moving {
			continue // fully invariant below this loop: invariant-load's case
		}
		var verdict depend.Verdict
		transform := "interchange"
		hint := fmt.Sprintf("interchange or block so the region is reused while cache-resident instead of once per %s iteration", carrier.Var.Name)
		if carrier.TimeStep {
			transform = "time-skew"
			hint = "time-skew (block across time steps) to shorten the reuse distance"
			verdict = deps.TimeSkew(carrier)
		} else {
			verdict = deps.Interchange(carrier)
		}
		return Diagnostic{
			File:     fileOf(fact.routine),
			Line:     fact.ref.Line,
			Code:     "redundant-region",
			Severity: SevOpportunity,
			Msg: fmt.Sprintf("%s re-reads the same region on every iteration of loop %s (line %d)",
				fact.ref.Name(), carrier.Var.Name, carrier.Line),
			Hint:         hint,
			MissDelta:    model.patterns[patternKey{ref: fact.ref.ID(), carry: carrier.Scope()}],
			Level:        model.level,
			Transform:    transform,
			Legality:     verdict.Legality.String(),
			LegalityNote: verdict.Note,
		}, true
	}
	return Diagnostic{}, false
}

// layoutMismatch flags references whose innermost loop walks a stride
// of at least a cache block while another loop of the nest walks a
// smaller constant stride: the access order fights the memory layout,
// and interchanging the small-stride loop inward (or transposing the
// array) turns one miss per access into one miss per block.
func layoutMismatch(model missModel, deps *depend.Analysis, fact *refFact,
	strides []symbolic.Stride, inner symbolic.Stride, fileOf func(*ir.Routine) string) (Diagnostic, bool) {

	if inner.Class != symbolic.StrideConst || model.blockBytes == 0 || abs64(inner.Bytes) < model.blockBytes {
		return Diagnostic{}, false
	}
	best := -1
	for i := 0; i < len(fact.nest)-1; i++ {
		s := strides[i]
		if s.Class != symbolic.StrideConst || s.Bytes == 0 {
			continue
		}
		if abs64(s.Bytes) >= model.blockBytes || abs64(s.Bytes) >= abs64(inner.Bytes) {
			continue
		}
		if best < 0 || abs64(s.Bytes) < abs64(strides[best].Bytes) {
			best = i
		}
	}
	if best < 0 {
		return Diagnostic{}, false
	}
	target := fact.nest[best]
	innermost := fact.nest[len(fact.nest)-1]
	verdict := deps.Interchange(target)

	var delta float64
	if model.ok {
		ideal := model.refTotal(fact.ref.ID()) * float64(abs64(strides[best].Bytes)) / float64(model.blockBytes)
		if d := model.byRef[fact.ref.ID()] - ideal; d > 0 {
			delta = d
		}
	}
	return Diagnostic{
		File:     fileOf(fact.routine),
		Line:     fact.ref.Line,
		Code:     "layout-mismatch",
		Severity: SevOpportunity,
		Msg: fmt.Sprintf("%s walks a %d-byte stride in innermost loop %s while loop %s strides %d bytes",
			fact.ref.Name(), inner.Bytes, innermost.Var.Name, target.Var.Name, strides[best].Bytes),
		Hint: fmt.Sprintf("interchange the %s loop innermost (or transpose %s's dimensions)",
			target.Var.Name, fact.ref.Array.Name),
		MissDelta:    delta,
		Level:        model.level,
		Transform:    "interchange",
		Legality:     verdict.Legality.String(),
		LegalityNote: verdict.Note,
	}, true
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
