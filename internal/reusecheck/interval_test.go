package reusecheck

import (
	"testing"

	"reusetool/internal/ir"
)

func iv(lo, hi int64) Ival { return Ival{Lo: lo, Hi: hi, LoOK: true, HiOK: true} }

func TestIvalBasics(t *testing.T) {
	if s := top().String(); s != "[-inf,+inf]" {
		t.Errorf("top = %s", s)
	}
	if s := iv(2, 5).String(); s != "[2,5]" {
		t.Errorf("iv(2,5) = %s", s)
	}
	if v, ok := point(7).Const(); !ok || v != 7 {
		t.Errorf("point(7).Const = %d,%v", v, ok)
	}
	if _, ok := iv(1, 2).Const(); ok {
		t.Error("non-singleton reported Const")
	}
	if top().Bounded() || !iv(0, 3).Bounded() {
		t.Error("Bounded flags wrong")
	}
}

func TestHullWiden(t *testing.T) {
	if got := hull(iv(0, 3), iv(5, 9)); got != iv(0, 9) {
		t.Errorf("hull = %s", got)
	}
	if got := hull(iv(0, 3), top()); got != top() {
		t.Errorf("hull with top = %s", got)
	}
	// Stable iterate: widening is the identity.
	if got := widen(iv(0, 9), iv(0, 9)); got != iv(0, 9) {
		t.Errorf("widen stable = %s", got)
	}
	// A hi that moved jumps to +inf; the stable lo stays.
	got := widen(iv(0, 5), iv(0, 6))
	if !got.LoOK || got.Lo != 0 || got.HiOK {
		t.Errorf("widen growing hi = %s", got)
	}
	// A lo that moved jumps to -inf.
	got = widen(iv(0, 5), iv(-1, 5))
	if got.LoOK || !got.HiOK || got.Hi != 5 {
		t.Errorf("widen shrinking lo = %s", got)
	}
}

func TestIvalArith(t *testing.T) {
	cases := []struct {
		name string
		got  Ival
		want Ival
	}{
		{"add", addIval(iv(1, 2), iv(10, 20)), iv(11, 22)},
		{"sub", subIval(iv(1, 2), iv(10, 20)), iv(-19, -8)},
		{"neg", neg(iv(-3, 5)), iv(-5, 3)},
		{"scale pos", scaleIval(iv(1, 3), 4), iv(4, 12)},
		{"scale neg", scaleIval(iv(1, 3), -2), iv(-6, -2)},
		{"scale zero", scaleIval(top(), 0), point(0)},
		{"mul signs", mulIval(iv(-2, 3), iv(-5, 7)), iv(-15, 21)},
		{"mul const", mulIval(point(3), iv(1, 2)), iv(3, 6)},
		{"div", divIval(iv(-7, 9), point(2)), iv(-3, 4)},
		{"div neg", divIval(iv(2, 9), point(-3)), iv(-3, 0)},
		{"div nonconst", divIval(iv(0, 9), iv(1, 2)), top()},
		{"mod in range", modIval(iv(0, 3), point(8)), iv(0, 3)},
		{"mod nonneg", modIval(iv(0, 100), point(8)), iv(0, 7)},
		{"mod signed", modIval(top(), point(8)), iv(-7, 7)},
		{"min", minIval(iv(0, 5), iv(2, 3)), iv(0, 3)},
		{"min one bound", minIval(top(), iv(2, 3)), Ival{Hi: 3, HiOK: true}},
		{"max", maxIval(iv(0, 5), iv(2, 7)), iv(2, 7)},
		{"max one bound", maxIval(top(), iv(2, 3)), Ival{Lo: 2, LoOK: true}},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %s, want %s", tc.name, tc.got, tc.want)
		}
	}
}

func TestEvalIval(t *testing.T) {
	n := &ir.Var{Name: "n"}
	env := map[string]Ival{"n": iv(0, 9)}
	// 2*n + 1 over n in [0,9] = [1,19]
	e := ir.Add(ir.Mul(ir.C(2), n), ir.C(1))
	if got := evalIval(e, env); got != iv(1, 19) {
		t.Errorf("2n+1 = %s", got)
	}
	// Unknown variable evaluates to top.
	if got := evalIval(&ir.Var{Name: "m"}, env); got != top() {
		t.Errorf("unknown var = %s", got)
	}
	// Loads are opaque.
	if got := evalIval(&ir.Load{}, env); got != top() {
		t.Errorf("load = %s", got)
	}
}

func TestCondDecide(t *testing.T) {
	cases := []struct {
		name string
		op   ir.CmpOp
		l, r Ival
		want int
	}{
		{"lt always", ir.CmpLt, iv(0, 4), iv(5, 9), 1},
		{"lt never", ir.CmpLt, iv(5, 9), iv(0, 5), -1},
		{"lt maybe", ir.CmpLt, iv(0, 5), iv(5, 9), 0},
		{"le always", ir.CmpLe, iv(0, 5), iv(5, 9), 1},
		{"ge always", ir.CmpGe, iv(5, 9), iv(0, 5), 1},
		{"gt never", ir.CmpGt, iv(0, 5), iv(5, 9), -1},
		{"eq const", ir.CmpEq, point(3), point(3), 1},
		{"eq disjoint", ir.CmpEq, iv(0, 2), iv(3, 5), -1},
		{"eq maybe", ir.CmpEq, iv(0, 3), iv(3, 5), 0},
		{"ne disjoint", ir.CmpNe, iv(0, 2), iv(3, 5), 1},
		{"ne const", ir.CmpNe, point(4), point(4), -1},
		{"unbounded", ir.CmpLt, top(), iv(0, 5), 0},
	}
	for _, tc := range cases {
		if got := condDecide(tc.op, tc.l, tc.r); got != tc.want {
			t.Errorf("%s: condDecide = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestRefine(t *testing.T) {
	v := &ir.Var{Name: "i"}
	env := map[string]Ival{"i": iv(0, 9)}

	// Then branch of "if i < 5": i in [0,4].
	got := refine(env, ir.Lt(v, ir.C(5)), false)
	if got["i"] != iv(0, 4) {
		t.Errorf("i<5 then: %s", got["i"])
	}
	// Else branch: i >= 5.
	got = refine(env, ir.Lt(v, ir.C(5)), true)
	if got["i"] != iv(5, 9) {
		t.Errorf("i<5 else: %s", got["i"])
	}
	// Variable on the right flips the operator: "5 <= i" refines i >= 5.
	got = refine(env, ir.Le(ir.C(5), v), false)
	if got["i"] != iv(5, 9) {
		t.Errorf("5<=i then: %s", got["i"])
	}
	// Equality pins both ends.
	got = refine(env, ir.Eq(v, ir.C(3)), false)
	if got["i"] != point(3) {
		t.Errorf("i==3 then: %s", got["i"])
	}
	// A useless refinement returns the environment unchanged.
	same := refine(env, ir.Lt(v, ir.C(100)), false)
	if same["i"] != iv(0, 9) {
		t.Errorf("i<100 should not tighten: %s", same["i"])
	}
	// The original environment is never mutated.
	if env["i"] != iv(0, 9) {
		t.Errorf("refine mutated its input: %s", env["i"])
	}
}
