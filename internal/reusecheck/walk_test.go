package reusecheck

import (
	"strings"
	"testing"

	"reusetool/internal/ir"
	"reusetool/internal/lang"
)

// checkSrc parses .loop source and runs the full checker with the
// uninitialized-data check suppressed (these fixtures declare no init).
func checkSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	prog, _, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := prog.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return Check(info, Options{AssumeInitialized: true})
}

// find returns the diagnostics with one code.
func find(diags []Diagnostic, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestDeadStoreSameIteration(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
array A f64 [N]
routine main file p.f line 1 {
  for i = 0 .. N-1 line 2 {
    access A[i]!
    access A[i]!
  }
}
`)
	ds := find(diags, "dead-store")
	if len(ds) != 1 {
		t.Fatalf("dead-store diagnostics = %d, want 1\n%v", len(ds), diags)
	}
	d := ds[0]
	if d.Line != 6 {
		t.Errorf("dead store reported at line %d, want 6 (the first store)", d.Line)
	}
	if !strings.Contains(d.Msg, "overwritten at line 7") {
		t.Errorf("msg = %q, want the killing store's line", d.Msg)
	}
	if d.Severity != SevDefect || d.Hint == "" {
		t.Errorf("dead store severity/hint: %+v", d)
	}
}

func TestDeadStoreKilledByRead(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
array A f64 [N]
routine main file p.f line 1 {
  for i = 0 .. N-1 line 2 {
    access A[i]!
    access A[i]
    access A[i]!
  }
}
`)
	if ds := find(diags, "dead-store"); len(ds) != 0 {
		t.Errorf("read between stores must kill the pending store: %v", ds)
	}
}

func TestDeadStoreGuardedStoresSeparate(t *testing.T) {
	// The branch store and the fall-through store run under different
	// guard contexts: neither may be reported dead.
	diags := checkSrc(t, `program p
param N 8
param M 4
array A f64 [N]
routine main file p.f line 1 {
  for i = 0 .. N-1 line 2 {
    if i < M {
      access A[i]!
    }
    access A[i]!
  }
}
`)
	if ds := find(diags, "dead-store"); len(ds) != 0 {
		t.Errorf("guarded store wrongly reported dead: %v", ds)
	}
}

func TestDeadStoreCrossIteration(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
array A f64 [N]
routine main file p.f line 1 {
  for t = 0 .. 9 line 2 {
    access A[0]!
  }
}
`)
	ds := find(diags, "dead-store")
	if len(ds) != 1 {
		t.Fatalf("cross-iteration dead store missing:\n%v", diags)
	}
	if !strings.Contains(ds[0].Msg, "does not depend on loop t") {
		t.Errorf("msg = %q", ds[0].Msg)
	}
	if ds[0].Line != 6 {
		t.Errorf("line = %d, want 6", ds[0].Line)
	}
}

func TestDeadStoreCrossIterationNeedsTwoTrips(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
array A f64 [N]
routine main file p.f line 1 {
  for t = 0 .. 0 line 2 {
    access A[0]!
  }
}
`)
	if ds := find(diags, "dead-store"); len(ds) != 0 {
		t.Errorf("one-trip loop cannot overwrite: %v", ds)
	}
}

func TestDeadGuard(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
array A f64 [N]
routine main file p.f line 1 {
  for i = 0 .. N-1 line 2 {
    if i < N {
      access A[i]
    }
  }
}
`)
	dg := find(diags, "dead-guard")
	if len(dg) != 1 {
		t.Fatalf("dead-guard diagnostics = %d, want 1\n%v", len(dg), diags)
	}
	if !strings.Contains(dg[0].Msg, "always holds") {
		t.Errorf("msg = %q", dg[0].Msg)
	}
}

func TestDeadGuardNeverHolds(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
array A f64 [N]
routine main file p.f line 1 {
  for i = 0 .. N-1 line 2 {
    if i > N {
      access A[0]
    }
    access A[i]
  }
}
`)
	dg := find(diags, "dead-guard")
	if len(dg) != 1 {
		t.Fatalf("dead-guard diagnostics = %d, want 1\n%v", len(dg), diags)
	}
	if !strings.Contains(dg[0].Msg, "never holds") {
		t.Errorf("msg = %q", dg[0].Msg)
	}
}

func TestUndecidableGuardNotFlagged(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
param M 4
array A f64 [N]
routine main file p.f line 1 {
  for i = 0 .. N-1 line 2 {
    if i < M {
      access A[i]
    }
    access A[i]
  }
}
`)
	if dg := find(diags, "dead-guard"); len(dg) != 0 {
		t.Errorf("undecidable guard flagged: %v", dg)
	}
}

func TestBoundsProvedNote(t *testing.T) {
	diags := checkSrc(t, `program p
param N 8
array A f64 [N]
routine main file p.f line 1 {
  for i = 0 .. N-1 line 2 {
    access A[i]
  }
}
`)
	notes := find(diags, "bounds-proved")
	if len(notes) != 1 {
		t.Fatalf("bounds-proved notes = %d, want 1\n%v", len(notes), diags)
	}
	if notes[0].Severity != SevNote {
		t.Errorf("severity = %v, want note", notes[0].Severity)
	}
	if Findings(diags) != 0 {
		t.Errorf("notes must not count as findings: %d", Findings(diags))
	}
}

func TestSortDedupAndOrder(t *testing.T) {
	d1 := Diagnostic{File: "b.f", Line: 2, Code: "x", Msg: "m"}
	d2 := Diagnostic{File: "a.f", Line: 9, Code: "x", Msg: "m"}
	d3 := Diagnostic{File: "a.f", Line: 9, Code: "x", Msg: "m"} // dup of d2
	d4 := Diagnostic{File: "a.f", Line: 1, Code: "z", Msg: "m"}
	got := Sort([]Diagnostic{d1, d2, d3, d4})
	if len(got) != 3 {
		t.Fatalf("dedup kept %d, want 3", len(got))
	}
	if got[0] != d4 || got[1] != d2 || got[2] != d1 {
		t.Errorf("order = %v", got)
	}
}

func TestCheckIsDeterministic(t *testing.T) {
	src := `program p
param N 32
array A f64 [N, N]
array B f64 [N, N]
routine main file p.f line 1 {
  for j = 0 .. N-1 line 2 {
    for i = 0 .. N-1 line 3 {
      access A[j, i], B[0, j], B[i, j]!
    }
  }
}
`
	first := checkSrc(t, src)
	for round := 0; round < 3; round++ {
		again := checkSrc(t, src)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d diagnostics, first run had %d", round, len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d: diagnostic %d drifted:\n%v\n%v", round, i, first[i], again[i])
			}
		}
	}
}

// TestOpportunityFieldsPopulated: every opportunity carries the ranked
// suffix the issue requires — a miss prediction level, a transform,
// and a legality verdict.
func TestOpportunityFieldsPopulated(t *testing.T) {
	diags := checkSrc(t, `program p
param N 64
array A f64 [N, N]
array B f64 [N, N]
routine main file p.f line 1 {
  for j = 0 .. N-1 line 2 {
    for i = 0 .. N-1 line 3 {
      access A[j, i], B[0, j], B[i, j]!
    }
  }
}
`)
	var opps int
	for _, d := range diags {
		if d.Severity != SevOpportunity {
			continue
		}
		opps++
		if d.Level == "" || d.Transform == "" || d.Legality == "" {
			t.Errorf("%s at %s:%d missing ranking fields: %+v", d.Code, d.File, d.Line, d)
		}
	}
	if opps == 0 {
		t.Fatalf("fixture produced no opportunities:\n%v", diags)
	}
}

// TestCallKillsPending: an opaque call may read anything, so stores
// across it are not dead.
func TestCallKillsPending(t *testing.T) {
	prog := ir.NewProgram("p")
	n := prog.Param("N", 8)
	a := prog.AddArray("A", 8, n)
	i := prog.Var("i")
	sub := prog.AddRoutine("sub", "p.f", 20)
	sub.Body = []ir.Stmt{ir.Do(a.Read(ir.C(0)))}
	main := prog.AddRoutine("main", "p.f", 1)
	w1 := a.WriteRef(i)
	w1.Line = 3
	w2 := a.WriteRef(i)
	w2.Line = 5
	main.Body = []ir.Stmt{
		ir.For(i, ir.C(0), ir.Sub(n, ir.C(1)),
			ir.Do(w1),
			&ir.Call{Callee: sub},
			ir.Do(w2),
		).At(2),
	}
	info, err := prog.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(info, Options{AssumeInitialized: true})
	if ds := find(diags, "dead-store"); len(ds) != 0 {
		t.Errorf("store across opaque call reported dead: %v", ds)
	}
}
