package reusecheck

import (
	"fmt"
	"sort"
	"strings"

	"reusetool/internal/ir"
	"reusetool/internal/trace"
)

// refFact is the walker's view of one reference site: its loop nest
// outermost first, its subscripts with Let bindings substituted, and
// the reachability/guard context it executes under.
type refFact struct {
	ref      *ir.Ref
	routine  *ir.Routine
	nest     []*ir.Loop // outermost first
	subs     []ir.Expr  // Let-substituted subscripts
	guarded  bool       // under an If: may not execute
	dead     bool       // inside provably unreachable code
	inBounds bool       // every subscript provably within the extent
}

// loopFact caches per-loop interval facts.
type loopFact struct {
	rng    Ival // value range of the loop variable
	empty  bool // provably zero-trip
	trips2 bool // provably two or more iterations
}

// walker performs one abstract-interpretation pass over the structured
// IR. It carries two environments in parallel: an interval environment
// (the abstract value of every parameter, loop variable, and Let
// binding) and an exact substitution environment for symbolic region
// keys, maintained exactly as internal/depend does. Loop bodies widen
// by havoc: any Let target bound inside a loop body jumps to top at
// loop entry, which is the one-step widening that makes the pass a
// fixpoint in a single sweep.
type walker struct {
	info   *ir.Info
	params map[string]int64
	fileOf func(*ir.Routine) string

	facts []*refFact // indexed by trace.RefID
	loops map[*ir.Loop]loopFact
	diags []Diagnostic
}

func newWalker(info *ir.Info, params map[string]int64, fileOf func(*ir.Routine) string) *walker {
	return &walker{
		info:   info,
		params: params,
		fileOf: fileOf,
		facts:  make([]*refFact, len(info.Refs)),
		loops:  map[*ir.Loop]loopFact{},
	}
}

func (w *walker) run() {
	for _, rt := range w.info.Prog.Routines {
		env := make(map[string]Ival, len(w.params))
		for name, v := range w.params {
			env[name] = point(v)
		}
		pend := newPending()
		w.walkBody(rt, rt.Body, nil, env, map[string]ir.Expr{}, false, false, pend)
	}
}

// pendingStore is a store whose value has not yet been observed.
type pendingStore struct {
	ref  *ir.Ref
	subs []ir.Expr
}

// pending tracks unobserved stores per array within one straight-line
// body. Each loop body and If branch gets a fresh instance, so every
// store in one instance shares the same guard context by construction.
type pending struct {
	byArray map[*ir.Array]map[string]*pendingStore
}

func newPending() *pending {
	return &pending{byArray: map[*ir.Array]map[string]*pendingStore{}}
}

func (p *pending) put(arr *ir.Array, key string, ps *pendingStore) {
	m := p.byArray[arr]
	if m == nil {
		m = map[string]*pendingStore{}
		p.byArray[arr] = m
	}
	m[key] = ps
}

func (p *pending) get(arr *ir.Array, key string) *pendingStore {
	return p.byArray[arr][key]
}

// killArray drops all pending stores to one array (it was read).
func (p *pending) killArray(arr *ir.Array) { delete(p.byArray, arr) }

// killAll drops everything (an opaque call may read anything).
func (p *pending) killAll() { p.byArray = map[*ir.Array]map[string]*pendingStore{} }

// regionKey renders substituted subscripts as the canonical identity of
// the written region within one body.
func regionKey(subs []ir.Expr) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

func (w *walker) walkBody(rt *ir.Routine, body []ir.Stmt, nest []*ir.Loop,
	env map[string]Ival, sub map[string]ir.Expr, guarded, dead bool, pend *pending) {

	for _, s := range body {
		switch st := s.(type) {
		case *ir.Let:
			w.killExprReads(pend, st.E)
			env[st.Var.Name] = evalIval(st.E, env)
			e := substExpr(st.E, sub)
			if mentionsVar(e, st.Var.Name) {
				delete(sub, st.Var.Name)
			} else {
				sub[st.Var.Name] = e
			}

		case *ir.Loop:
			w.killExprReads(pend, st.Lo)
			w.killExprReads(pend, st.Hi)
			w.walkLoop(rt, st, nest, env, sub, guarded, dead, pend)

		case *ir.If:
			w.killExprReads(pend, st.Cond.L)
			w.killExprReads(pend, st.Cond.R)
			l := evalIval(st.Cond.L, env)
			r := evalIval(st.Cond.R, env)
			verdict := condDecide(st.Cond.Op, l, r)
			if verdict != 0 && !dead {
				w.reportDeadGuard(rt, st, verdict)
			}
			thenEnv := copyEnv(refine(env, st.Cond, false))
			elseEnv := copyEnv(refine(env, st.Cond, true))
			w.walkBody(rt, st.Then, nest, thenEnv, copySub(sub), true, dead || verdict < 0, newPending())
			w.walkBody(rt, st.Else, nest, elseEnv, copySub(sub), true, dead || verdict > 0, newPending())
			for arr := range bodyReads(st.Then) {
				pend.killArray(arr)
			}
			for arr := range bodyReads(st.Else) {
				pend.killArray(arr)
			}

		case *ir.Access:
			for _, ref := range st.Refs {
				for _, idx := range ref.Index {
					w.killExprReads(pend, idx)
				}
				w.recordRef(rt, ref, nest, env, sub, guarded, dead)
				if ref.Write {
					if !dead {
						subs := w.facts[ref.ID()].subs
						key := regionKey(subs)
						if prev := pend.get(ref.Array, key); prev != nil {
							w.reportDeadStore(rt, prev.ref, ref)
						}
						pend.put(ref.Array, key, &pendingStore{ref: ref, subs: subs})
					}
				} else {
					pend.killArray(ref.Array)
				}
			}

		case *ir.Call:
			pend.killAll()
		}
	}
}

func (w *walker) walkLoop(rt *ir.Routine, l *ir.Loop, nest []*ir.Loop,
	env map[string]Ival, sub map[string]ir.Expr, guarded, dead bool, pend *pending) {

	step := int64(l.Step.(ir.Const))
	ivLo := evalIval(l.Lo, env)
	ivHi := evalIval(l.Hi, env)

	var rng Ival
	var empty, trips2 bool
	if step > 0 {
		rng = Ival{Lo: ivLo.Lo, LoOK: ivLo.LoOK, Hi: ivHi.Hi, HiOK: ivHi.HiOK}
		empty = ivLo.LoOK && ivHi.HiOK && ivLo.Lo > ivHi.Hi
		trips2 = ivLo.HiOK && ivHi.LoOK && ivHi.Lo >= ivLo.Hi+step
	} else {
		rng = Ival{Lo: ivHi.Lo, LoOK: ivHi.LoOK, Hi: ivLo.Hi, HiOK: ivLo.HiOK}
		empty = ivLo.HiOK && ivHi.LoOK && ivLo.Hi < ivHi.Lo
		trips2 = ivLo.LoOK && ivHi.HiOK && ivHi.Hi <= ivLo.Lo+step
	}
	w.loops[l] = loopFact{rng: rng, empty: empty, trips2: trips2}

	// Widen by havoc: Let targets the body rebinds are unknown at entry
	// to any iteration after the first.
	inner := copyEnv(env)
	for name := range letTargets(l.Body) {
		inner[name] = top()
	}
	inner[l.Var.Name] = rng

	innerSub := copySub(sub)
	delete(innerSub, l.Var.Name)
	for name := range letTargets(l.Body) {
		delete(innerSub, name)
	}

	bodyPend := newPending()
	w.walkBody(rt, l.Body, append(nest, l), inner, innerSub, guarded, dead || empty, bodyPend)

	// Cross-iteration dead stores: a store that survives the body with a
	// location independent of the loop variable is overwritten by the
	// next iteration — dead unless something inside the body reads the
	// array (reads before the store observe the previous iteration).
	if !dead && !empty && trips2 {
		reads := bodyReads(l.Body)
		var dying []*pendingStore
		for arr, m := range bodyPend.byArray {
			if reads[arr] {
				continue
			}
			for _, ps := range m {
				if subsInvariant(ps.subs, l.Var.Name) {
					dying = append(dying, ps)
				}
			}
		}
		sort.Slice(dying, func(i, j int) bool { return dying[i].ref.ID() < dying[j].ref.ID() })
		for _, ps := range dying {
			w.diags = append(w.diags, Diagnostic{
				File:     w.fileOf(rt),
				Line:     ps.ref.Line,
				Code:     "dead-store",
				Severity: SevDefect,
				Msg: fmt.Sprintf("store %s does not depend on loop %s and is overwritten by the next iteration before any read",
					ps.ref.Name(), l.Var.Name),
				Hint: fmt.Sprintf("move the store out of the %s loop", l.Var.Name),
			})
		}
	}

	for arr := range bodyReads(l.Body) {
		pend.killArray(arr)
	}
}

// recordRef registers a reference fact and decides bounds provability.
func (w *walker) recordRef(rt *ir.Routine, ref *ir.Ref, nest []*ir.Loop,
	env map[string]Ival, sub map[string]ir.Expr, guarded, dead bool) {

	subs := make([]ir.Expr, len(ref.Index))
	for i, idx := range ref.Index {
		subs[i] = substExpr(idx, sub)
	}
	fact := &refFact{
		ref:     ref,
		routine: rt,
		nest:    append([]*ir.Loop(nil), nest...),
		subs:    subs,
		guarded: guarded,
		dead:    dead,
	}
	if len(ref.Index) > 0 {
		fact.inBounds = true
		for d, idx := range ref.Index {
			iv := evalIval(idx, env)
			ext, ok := evalIval(ref.Array.Dims[d], envOfParams(w.params)).Const()
			if !ok || !iv.Bounded() || iv.Lo < 0 || iv.Hi > ext-1 {
				fact.inBounds = false
				break
			}
		}
	}
	w.facts[ref.ID()] = fact
}

func (w *walker) reportDeadStore(rt *ir.Routine, prev, next *ir.Ref) {
	w.diags = append(w.diags, Diagnostic{
		File:     w.fileOf(rt),
		Line:     prev.Line,
		Code:     "dead-store",
		Severity: SevDefect,
		Msg: fmt.Sprintf("store %s is overwritten at line %d before any read",
			prev.Name(), next.Line),
		Hint: "delete the first store or use its value",
	})
}

func (w *walker) reportDeadGuard(rt *ir.Routine, st *ir.If, verdict int) {
	line := condLine(st)
	var msg, hint string
	if verdict > 0 {
		if len(st.Else) > 0 {
			msg = fmt.Sprintf("condition %s always holds; the else branch never executes", st.Cond)
			hint = "delete the else branch"
		} else {
			msg = fmt.Sprintf("condition %s always holds; the guard is redundant", st.Cond)
			hint = "remove the guard"
		}
	} else {
		msg = fmt.Sprintf("condition %s never holds; the guarded block never executes", st.Cond)
		hint = "delete the dead branch or fix the condition"
	}
	w.diags = append(w.diags, Diagnostic{
		File:     w.fileOf(rt),
		Line:     line,
		Code:     "dead-guard",
		Severity: SevDefect,
		Msg:      msg,
		Hint:     hint,
	})
}

// condLine finds a source position for an If, which carries none
// itself: the first positioned expression in the condition, else the
// first positioned statement of either branch.
func condLine(st *ir.If) int {
	line := 0
	probe := func(e ir.Expr) {
		ir.WalkExpr(e, func(x ir.Expr) {
			if line != 0 {
				return
			}
			switch n := x.(type) {
			case *ir.Bin:
				if n.Line != 0 {
					line = n.Line
				}
			case *ir.Load:
				if n.Line != 0 {
					line = n.Line
				}
			}
		})
	}
	probe(st.Cond.L)
	probe(st.Cond.R)
	if line == 0 {
		line = firstLine(st.Then)
	}
	if line == 0 {
		line = firstLine(st.Else)
	}
	return line
}

func firstLine(body []ir.Stmt) int {
	for _, s := range body {
		switch st := s.(type) {
		case *ir.Loop:
			if st.Line != 0 {
				return st.Line
			}
			if l := firstLine(st.Body); l != 0 {
				return l
			}
		case *ir.Let:
			if st.Line != 0 {
				return st.Line
			}
		case *ir.If:
			if l := condLine(st); l != 0 {
				return l
			}
		case *ir.Access:
			for _, r := range st.Refs {
				if r.Line != 0 {
					return r.Line
				}
			}
		}
	}
	return 0
}

// killExprReads drops pending stores to every array an expression reads
// through an indirection.
func (w *walker) killExprReads(pend *pending, e ir.Expr) {
	ir.WalkExpr(e, func(x ir.Expr) {
		if ld, ok := x.(*ir.Load); ok {
			pend.killArray(ld.Array)
		}
	})
}

// bodyReads collects every array a body may read: read references and
// Load indirections anywhere inside, including guarded code and nested
// loops.
func bodyReads(body []ir.Stmt) map[*ir.Array]bool {
	out := map[*ir.Array]bool{}
	var collectExpr func(e ir.Expr)
	collectExpr = func(e ir.Expr) {
		ir.WalkExpr(e, func(x ir.Expr) {
			if ld, ok := x.(*ir.Load); ok {
				out[ld.Array] = true
			}
		})
	}
	var walk func(body []ir.Stmt)
	walk = func(body []ir.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *ir.Loop:
				collectExpr(st.Lo)
				collectExpr(st.Hi)
				walk(st.Body)
			case *ir.Let:
				collectExpr(st.E)
			case *ir.If:
				collectExpr(st.Cond.L)
				collectExpr(st.Cond.R)
				walk(st.Then)
				walk(st.Else)
			case *ir.Access:
				for _, r := range st.Refs {
					for _, idx := range r.Index {
						collectExpr(idx)
					}
					if !r.Write {
						out[r.Array] = true
					}
				}
			case *ir.Call:
				if st.Callee != nil {
					walk(st.Callee.Body)
				}
			}
		}
	}
	walk(body)
	return out
}

// letTargets collects the names a body's Let statements bind, at any
// nesting depth.
func letTargets(body []ir.Stmt) map[string]bool {
	out := map[string]bool{}
	var walk func(body []ir.Stmt)
	walk = func(body []ir.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *ir.Let:
				out[st.Var.Name] = true
			case *ir.Loop:
				walk(st.Body)
			case *ir.If:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(body)
	return out
}

// subsInvariant reports whether no subscript mentions a variable.
func subsInvariant(subs []ir.Expr, name string) bool {
	for _, s := range subs {
		if mentionsVar(s, name) {
			return false
		}
	}
	return true
}

func mentionsVar(e ir.Expr, name string) bool {
	found := false
	ir.WalkExpr(e, func(x ir.Expr) {
		if v, ok := x.(*ir.Var); ok && v.Name == name {
			found = true
		}
	})
	return found
}

// substExpr substitutes Let bindings into an expression, mirroring the
// dependence analyzer's environment semantics.
func substExpr(e ir.Expr, env map[string]ir.Expr) ir.Expr {
	if len(env) == 0 {
		return e
	}
	switch x := e.(type) {
	case *ir.Var:
		if b, ok := env[x.Name]; ok {
			return b
		}
		return x
	case *ir.Bin:
		l := substExpr(x.L, env)
		r := substExpr(x.R, env)
		if l == x.L && r == x.R {
			return x
		}
		return &ir.Bin{Op: x.Op, L: l, R: r, Line: x.Line}
	case *ir.Load:
		idx := make([]ir.Expr, len(x.Index))
		changed := false
		for i, s := range x.Index {
			idx[i] = substExpr(s, env)
			if idx[i] != s {
				changed = true
			}
		}
		if !changed {
			return x
		}
		return &ir.Load{Array: x.Array, Index: idx, Line: x.Line}
	}
	return e
}

func copyEnv(env map[string]Ival) map[string]Ival {
	out := make(map[string]Ival, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func copySub(sub map[string]ir.Expr) map[string]ir.Expr {
	out := make(map[string]ir.Expr, len(sub))
	for k, v := range sub {
		out[k] = v
	}
	return out
}

func envOfParams(params map[string]int64) map[string]Ival {
	out := make(map[string]Ival, len(params))
	for k, v := range params {
		out[k] = point(v)
	}
	return out
}

// factByID is a typed accessor for detectors.
func (w *walker) factByID(id trace.RefID) *refFact { return w.facts[id] }
