package reusecheck

import (
	"strings"
	"testing"
)

// mutationBase is a clean jki-style nest: A is read with the i loop
// walking its contiguous first dimension and B is written once per
// iteration. The checker finds no defects and no opportunities in it
// (assertClean pins that), so any diagnostic on a mutant is caused by
// the seeded defect alone.
const mutationBase = `program mut
param N 64
array A f64 [N, N]
array B f64 [N, N]
routine main file mut.f line 1 {
  for j = 0 .. N-1 line 2 {
    for i = 0 .. N-1 line 3 {
      access A[i, j]
      access B[i, j]!
    }
  }
}
`

func assertClean(t *testing.T, diags []Diagnostic, codes ...string) {
	t.Helper()
	for _, code := range codes {
		if got := find(diags, code); len(got) != 0 {
			t.Fatalf("base program already has %s diagnostics: %v", code, got)
		}
	}
}

// mutate seeds one defect by textual substitution and returns the
// diagnostics with the given code.
func mutate(t *testing.T, old, new, code string) []Diagnostic {
	t.Helper()
	src := strings.Replace(mutationBase, old, new, 1)
	if src == mutationBase {
		t.Fatalf("mutation %q not applied", new)
	}
	base := checkSrc(t, mutationBase)
	assertClean(t, base, code)
	return find(checkSrc(t, src), code)
}

// TestMutationDeadStore seeds a store that is overwritten on the next
// line before any read and asserts the checker pins it to the seeded
// file:line.
func TestMutationDeadStore(t *testing.T) {
	got := mutate(t,
		"      access B[i, j]!",
		"      access B[i, j]!\n      access B[i, j]!",
		"dead-store")
	if len(got) != 1 {
		t.Fatalf("dead-store diagnostics = %d, want 1: %v", len(got), got)
	}
	d := got[0]
	if d.File != "mut.f" || d.Line != 9 {
		t.Errorf("seeded dead store at mut.f:9, reported at %s:%d", d.File, d.Line)
	}
	if !strings.Contains(d.Msg, "B[i,j]=") || !strings.Contains(d.Msg, "overwritten at line 10") {
		t.Errorf("msg = %q", d.Msg)
	}
}

// TestMutationInvariantLoad seeds a load whose address ignores the
// innermost loop and asserts the hoist opportunity lands on it, ranked
// and legality-checked.
func TestMutationInvariantLoad(t *testing.T) {
	got := mutate(t,
		"      access A[i, j]",
		"      access A[i, j]\n      access A[0, j]",
		"invariant-load")
	if len(got) != 1 {
		t.Fatalf("invariant-load diagnostics = %d, want 1: %v", len(got), got)
	}
	d := got[0]
	if d.File != "mut.f" || d.Line != 9 {
		t.Errorf("seeded invariant load at mut.f:9, reported at %s:%d", d.File, d.Line)
	}
	if d.Transform != "hoist" || d.Legality != "legal" {
		t.Errorf("transform/legality = %q/%q, want hoist/legal", d.Transform, d.Legality)
	}
	if !strings.Contains(d.Msg, "invariant in innermost loop i") {
		t.Errorf("msg = %q", d.Msg)
	}
}

// TestMutationTransposedSubscript transposes A's subscripts so the
// innermost loop strides a full column and asserts the layout-mismatch
// opportunity names both loops.
func TestMutationTransposedSubscript(t *testing.T) {
	got := mutate(t,
		"access A[i, j]",
		"access A[j, i]",
		"layout-mismatch")
	if len(got) != 1 {
		t.Fatalf("layout-mismatch diagnostics = %d, want 1: %v", len(got), got)
	}
	d := got[0]
	if d.File != "mut.f" || d.Line != 8 {
		t.Errorf("seeded transposed subscript at mut.f:8, reported at %s:%d", d.File, d.Line)
	}
	if d.Legality != "legal" {
		t.Errorf("legality = %q, want legal (A is never written)", d.Legality)
	}
	if d.MissDelta <= 0 {
		t.Errorf("miss delta = %v, want > 0", d.MissDelta)
	}
	if !strings.Contains(d.Msg, "innermost loop i") || !strings.Contains(d.Msg, "loop j strides") {
		t.Errorf("msg = %q", d.Msg)
	}
}
