package lang

import (
	"os"
	"path/filepath"
	"testing"

	"reusetool/internal/interp"
	"reusetool/internal/trace"
)

// TestShippedProgramsParseAndRun validates every .loop file in the
// repository's programs/ directory end to end.
func TestShippedProgramsParseAndRun(t *testing.T) {
	dir := filepath.Join("..", "..", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("programs directory: %v", err)
	}
	var found int
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".loop" {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			prog, init, err := Parse(string(data))
			if err != nil {
				t.Fatal(err)
			}
			info, err := prog.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			var c trace.Counter
			opts := []interp.Option{interp.WithMaxAccesses(1 << 26)}
			if init != nil {
				opts = append(opts, interp.WithInit(init))
			}
			if _, err := interp.Run(info, nil, &c, opts...); err != nil {
				t.Fatal(err)
			}
			if c.Accesses == 0 {
				t.Error("program performed no accesses")
			}
			if c.Enters != c.Exits {
				t.Error("unbalanced scope events")
			}
		})
	}
	if found < 4 {
		t.Errorf("only %d .loop programs found, want >= 4", found)
	}
}
