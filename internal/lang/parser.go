package lang

import (
	"fmt"
	"strconv"

	"reusetool/internal/interp"
	"reusetool/internal/ir"
)

// Parse builds an ir.Program from source text, plus the initializer for
// its data arrays ("init" declarations; nil when the program has none).
// The returned program has not been finalized.
func Parse(src string) (*ir.Program, func(*interp.Machine) error, error) {
	prog, init, _, err := ParseFile("<input>", src)
	return prog, init, err
}

// FileMeta is source-level information ParseFile collects beyond the IR:
// which data arrays an init declaration covers and where each parameter
// was declared. The static checker (internal/depend.Check) consumes it.
type FileMeta struct {
	// Inited marks data arrays covered by an init declaration.
	Inited map[*ir.Array]bool
	// ParamLines maps parameter names to their declaration line.
	ParamLines map[string]int
}

// ParseFile is Parse with a file name: error messages carry file:line
// positions, and the returned FileMeta locates declarations for checker
// diagnostics.
func ParseFile(filename, src string) (*ir.Program, func(*interp.Machine) error, *FileMeta, error) {
	toks, err := lex(filename, src)
	if err != nil {
		return nil, nil, nil, err
	}
	p := &parser{toks: toks, filename: filename,
		meta: &FileMeta{Inited: map[*ir.Array]bool{}, ParamLines: map[string]int{}}}
	prog, err := p.file()
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, p.initializer(), p.meta, nil
}

// initSpec is one "init <array> <kind> [arg]" declaration.
type initSpec struct {
	array *ir.Array
	kind  string
	arg   int64
}

// initializer converts the collected init declarations into an
// interp.WithInit callback.
func (p *parser) initializer() func(*interp.Machine) error {
	if len(p.inits) == 0 {
		return nil
	}
	specs := p.inits
	return func(m *interp.Machine) error {
		for _, s := range specs {
			n := m.ArrayLen(s.array)
			switch s.kind {
			case "identity":
				m.FillData(s.array, func(i int64) int64 { return i })
			case "stride":
				m.FillData(s.array, func(i int64) int64 { return (i * s.arg) % n })
			case "random":
				state := uint64(s.arg)*2862933555777941757 + 3037000493
				m.FillData(s.array, func(i int64) int64 {
					state = state*6364136223846793005 + 1442695040888963407
					return int64(state % uint64(n))
				})
			case "const":
				m.FillData(s.array, func(int64) int64 { return s.arg })
			default:
				return fmt.Errorf("lang: unknown init kind %q", s.kind)
			}
		}
		return nil
	}
}

type parser struct {
	toks     []token
	pos      int
	filename string
	meta     *FileMeta

	prog     *ir.Program
	arrays   map[string]*ir.Array
	routines map[string]*ir.Routine
	inits    []initSpec
	// pendingCalls are fixed up once all routines are declared.
	pendingCalls []pendingCall
}

type pendingCall struct {
	stmt *ir.Call
	name string
	line int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("lang: %s:%d: %s", p.filename, t.line, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it is the given identifier/punct.
func (p *parser) accept(text string) bool {
	if p.peek().text == text && p.peek().kind != tokEOF {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	t := p.next()
	if t.text != text || t.kind == tokEOF {
		return t, p.errf(t, "expected %q, got %q", text, t.text)
	}
	return t, nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, got %q", t.text)
	}
	return t, nil
}

func (p *parser) expectNumber() (int64, token, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, t, p.errf(t, "expected number, got %q", t.text)
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, t, p.errf(t, "bad number %q", t.text)
	}
	return v, t, nil
}

var elemSizes = map[string]int64{"f64": 8, "f32": 4, "i64": 8, "i32": 4, "i8": 1}

func (p *parser) file() (*ir.Program, error) {
	if _, err := p.expect("program"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.prog = ir.NewProgram(name.text)
	p.arrays = map[string]*ir.Array{}
	p.routines = map[string]*ir.Routine{}

	for !p.atEOF() {
		t := p.next()
		switch t.text {
		case "param":
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			v, _, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			p.prog.Param(id.text, v)
			p.meta.ParamLines[id.text] = id.line

		case "array", "dataarray":
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ty, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			elem, ok := elemSizes[ty.text]
			if !ok {
				return nil, p.errf(ty, "unknown element type %q (want f64, f32, i64, i32, i8)", ty.text)
			}
			if _, err := p.expect("["); err != nil {
				return nil, err
			}
			dims, err := p.exprList("]")
			if err != nil {
				return nil, err
			}
			if _, dup := p.arrays[id.text]; dup {
				return nil, p.errf(id, "array %q redeclared", id.text)
			}
			if t.text == "dataarray" {
				p.arrays[id.text] = p.prog.AddDataArray(id.text, elem, dims...)
			} else {
				p.arrays[id.text] = p.prog.AddArray(id.text, elem, dims...)
			}

		case "routine":
			if err := p.routine(); err != nil {
				return nil, err
			}

		case "init":
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			arr, ok := p.arrays[id.text]
			if !ok || !arr.Data {
				return nil, p.errf(id, "init target %q must be a declared dataarray", id.text)
			}
			kind, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			spec := initSpec{array: arr, kind: kind.text}
			switch kind.text {
			case "identity":
			case "stride", "random", "const":
				v, _, err := p.expectNumber()
				if err != nil {
					return nil, err
				}
				spec.arg = v
			default:
				return nil, p.errf(kind, "unknown init kind %q (want identity, stride, random, const)", kind.text)
			}
			p.inits = append(p.inits, spec)
			p.meta.Inited[arr] = true

		default:
			return nil, p.errf(t, "expected param, array, dataarray or routine, got %q", t.text)
		}
	}

	// Fix up calls now that all routines exist.
	for _, pc := range p.pendingCalls {
		r, ok := p.routines[pc.name]
		if !ok {
			return nil, fmt.Errorf("lang: %s:%d: call to undeclared routine %q", p.filename, pc.line, pc.name)
		}
		pc.stmt.Callee = r
	}
	// An explicit "main" routine wins over declaration order.
	if r, ok := p.routines["main"]; ok {
		p.prog.Main = r
	}
	if p.prog.Main == nil {
		return nil, fmt.Errorf("lang: %s: program %q declares no routines", p.filename, p.prog.Name)
	}
	return p.prog, nil
}

func (p *parser) routine() error {
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.routines[id.text]; dup {
		return p.errf(id, "routine %q redeclared", id.text)
	}
	file := p.prog.Name + ".loop"
	line := id.line
	for {
		switch {
		case p.accept("file"):
			ft, err := p.expectIdent()
			if err != nil {
				return err
			}
			file = ft.text
		case p.accept("line"):
			v, _, err := p.expectNumber()
			if err != nil {
				return err
			}
			line = int(v)
		default:
			goto body
		}
	}
body:
	r := p.prog.AddRoutine(id.text, file, line)
	p.routines[id.text] = r
	body, err := p.block()
	if err != nil {
		return err
	}
	r.Body = body
	return nil
}

func (p *parser) block() ([]ir.Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []ir.Stmt
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errf(p.peek(), "unexpected end of input inside block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (ir.Stmt, error) {
	t := p.next()
	switch t.text {
	case "for", "timestep":
		timestep := false
		if t.text == "timestep" {
			timestep = true
			if _, err := p.expect("for"); err != nil {
				return nil, err
			}
		}
		return p.forStmt(timestep, t.line)

	case "let":
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		l := ir.Set(p.prog.Var(id.text), e)
		l.Line = id.line
		return l, nil

	case "if":
		return p.ifStmt()

	case "access":
		var refs []*ir.Ref
		for {
			r, err := p.ref()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
			if !p.accept(",") {
				break
			}
		}
		return ir.Do(refs...), nil

	case "call":
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		c := &ir.Call{}
		p.pendingCalls = append(p.pendingCalls, pendingCall{stmt: c, name: id.text, line: id.line})
		return c, nil
	}
	return nil, p.errf(t, "expected a statement, got %q", t.text)
}

func (p *parser) forStmt(timestep bool, defaultLine int) (ir.Stmt, error) {
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(".."); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	step := int64(1)
	line := defaultLine
	for {
		switch {
		case p.accept("by"):
			neg := p.accept("-")
			v, _, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			if neg {
				v = -v
			}
			step = v
		case p.accept("line"):
			v, _, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			line = int(v)
		default:
			goto body
		}
	}
body:
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	l := ir.ForStep(p.prog.Var(id.text), lo, hi, ir.C(step), body...).At(line)
	if timestep {
		l.AsTimeStep()
	}
	return l, nil
}

var cmpOps = map[string]func(l, r ir.Expr) ir.Cond{
	"==": ir.Eq, "!=": ir.Ne, "<": ir.Lt, "<=": ir.Le, ">": ir.Gt, ">=": ir.Ge,
}

func (p *parser) ifStmt() (ir.Stmt, error) {
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	mk, ok := cmpOps[opTok.text]
	if !ok {
		return nil, p.errf(opTok, "expected a comparison operator, got %q", opTok.text)
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []ir.Stmt
	if p.accept("else") {
		els, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	return ir.WhenElse(mk(l, r), then, els), nil
}

// ref parses Array[e, ...] with an optional trailing "!" marking a write.
func (p *parser) ref() (*ir.Ref, error) {
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	arr, ok := p.arrays[id.text]
	if !ok {
		return nil, p.errf(id, "access to undeclared array %q", id.text)
	}
	if _, err := p.expect("["); err != nil {
		return nil, err
	}
	idx, err := p.exprList("]")
	if err != nil {
		return nil, err
	}
	r := arr.Read(idx...)
	r.Line = id.line
	if p.accept("!") {
		r.Write = true
	}
	return r, nil
}

// exprList parses comma-separated expressions up to the closing token.
func (p *parser) exprList(closing string) ([]ir.Expr, error) {
	var out []ir.Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.accept(",") {
			continue
		}
		if _, err := p.expect(closing); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// at stamps the source line on expression nodes that can carry one
// (Bin, Load); constants fold away and variables are interned, so they
// stay position-free.
func at(e ir.Expr, line int) ir.Expr {
	switch x := e.(type) {
	case *ir.Bin:
		if x.Line == 0 {
			x.Line = line
		}
	case *ir.Load:
		if x.Line == 0 {
			x.Line = line
		}
	}
	return e
}

// expr := term (("+"|"-") term)*
func (p *parser) expr() (ir.Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		ln := p.peek().line
		switch {
		case p.accept("+"):
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = at(ir.Add(l, r), ln)
		case p.accept("-"):
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = at(ir.Sub(l, r), ln)
		default:
			return l, nil
		}
	}
}

// term := factor (("*"|"/"|"%") factor)*
func (p *parser) term() (ir.Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		ln := p.peek().line
		switch {
		case p.accept("*"):
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = at(ir.Mul(l, r), ln)
		case p.accept("/"):
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = at(ir.Div(l, r), ln)
		case p.accept("%"):
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = at(ir.Mod(l, r), ln)
		default:
			return l, nil
		}
	}
}

func (p *parser) factor() (ir.Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		return ir.C(v), nil

	case t.text == "-":
		f, err := p.factor()
		if err != nil {
			return nil, err
		}
		return at(ir.Sub(ir.C(0), f), t.line), nil

	case t.text == "(":
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.text == "min" || t.text == "max":
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(","); err != nil {
			return nil, err
		}
		b, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if t.text == "min" {
			return at(ir.Min(a, b), t.line), nil
		}
		return at(ir.Max(a, b), t.line), nil

	case t.kind == tokIdent:
		// Data-array indexing becomes an indirection.
		if p.peek().text == "[" {
			arr, ok := p.arrays[t.text]
			if !ok {
				return nil, p.errf(t, "indexing undeclared array %q", t.text)
			}
			if !arr.Data {
				return nil, p.errf(t, "array %q used in an expression must be a dataarray", t.text)
			}
			p.next() // consume "["
			idx, err := p.exprList("]")
			if err != nil {
				return nil, err
			}
			return &ir.Load{Array: arr, Index: idx, Line: t.line}, nil
		}
		return p.prog.Var(t.text), nil
	}
	return nil, p.errf(t, "expected an expression, got %q", t.text)
}
