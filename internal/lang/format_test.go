package lang

import (
	"hash/fnv"
	"testing"

	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/trace"
	"reusetool/internal/workloads"
)

// accessHasher fingerprints the access stream (addresses, sizes, modes),
// which is independent of scope-ID assignment.
type accessHasher struct {
	h        uint64
	accesses uint64
	enters   uint64
}

func newAccessHasher() *accessHasher { return &accessHasher{h: 14695981039346656037} }

func (a *accessHasher) EnterScope(trace.ScopeID) { a.enters++ }
func (a *accessHasher) ExitScope(trace.ScopeID)  {}
func (a *accessHasher) Access(_ trace.RefID, addr uint64, size uint32, write bool) {
	a.accesses++
	buf := [16]byte{}
	for i := 0; i < 8; i++ {
		buf[i] = byte(addr >> (8 * i))
	}
	buf[8] = byte(size)
	if write {
		buf[9] = 1
	}
	f := fnv.New64a()
	f.Write(buf[:])
	a.h = a.h*1099511628211 ^ f.Sum64()
}

func fingerprint(t *testing.T, prog *ir.Program) (uint64, uint64, uint64) {
	t.Helper()
	info, err := prog.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	h := newAccessHasher()
	if _, err := interp.Run(info, nil, h); err != nil {
		t.Fatalf("run: %v", err)
	}
	return h.h, h.accesses, h.enters
}

// TestRoundTripBuiltinWorkloads: formatting any init-free built-in
// workload and re-parsing it yields a program with the identical memory
// access stream.
func TestRoundTripBuiltinWorkloads(t *testing.T) {
	builders := map[string]func() *ir.Program{
		"fig1a":     func() *ir.Program { return workloads.Fig1(false) },
		"fig1b":     func() *ir.Program { return workloads.Fig1(true) },
		"fig2":      workloads.Fig2,
		"stream":    func() *ir.Program { return workloads.Stream(512, 2) },
		"stencil":   func() *ir.Program { return workloads.Stencil(24, 2) },
		"transpose": func() *ir.Program { return workloads.Transpose(32) },
		"matmul":    func() *ir.Program { return workloads.MatMul(24, 0) },
		"matmul-blocked": func() *ir.Program {
			return workloads.MatMul(24, 8)
		},
		"stencil1d":     func() *ir.Program { return workloads.Stencil1D(512, 3) },
		"stencil1dskew": func() *ir.Program { return workloads.Stencil1DSkewed(512, 3, 64) },
	}
	// All Sweep3D variants, including wavefront min/max bounds and Let.
	for _, cfg := range workloads.Sweep3DVariants(5) {
		cfg := cfg
		cfg.Octants = 1
		builders["sweep3d-"+cfg.Name()] = func() *ir.Program {
			p, err := workloads.Sweep3D(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
	}

	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			origHash, origAcc, origEnters := fingerprint(t, build())
			src := Format(build())
			parsed, init, err := Parse(src)
			if err != nil {
				t.Fatalf("re-parse failed: %v\n%s", err, src)
			}
			if init != nil {
				t.Fatal("init-free program produced an initializer")
			}
			gotHash, gotAcc, gotEnters := fingerprint(t, parsed)
			if gotAcc != origAcc {
				t.Fatalf("access counts differ: %d vs %d", gotAcc, origAcc)
			}
			if gotEnters != origEnters {
				t.Fatalf("scope entry counts differ: %d vs %d", gotEnters, origEnters)
			}
			if gotHash != origHash {
				t.Fatalf("access streams differ (hash %x vs %x)", gotHash, origHash)
			}
		})
	}
}

func TestFormatSanitizesNames(t *testing.T) {
	cfg := workloads.Sweep3DVariants(5)[5] // "Blk6+dimIC"
	cfg.Octants = 1
	p, err := workloads.Sweep3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := Format(p)
	if _, _, err := Parse(src); err != nil {
		t.Fatalf("sanitized program does not parse: %v", err)
	}
}

func TestFormatIsStable(t *testing.T) {
	a := Format(workloads.Fig2())
	b := Format(workloads.Fig2())
	if a != b {
		t.Error("Format is not deterministic")
	}
}
