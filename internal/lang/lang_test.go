package lang

import (
	"strings"
	"testing"

	"reusetool/internal/interp"
	"reusetool/internal/scope"
	"reusetool/internal/trace"
	"reusetool/internal/workloads"
)

const saxpySrc = `
# classic saxpy
program saxpy
param N 1024
array X f64 [N]
array Y f64 [N]

routine main file saxpy.f line 1 {
  for i = 0 .. N-1 line 3 {
    access X[i], Y[i], Y[i]!
  }
}
`

func TestParseAndRunSaxpy(t *testing.T) {
	prog, _, err := Parse(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "saxpy" {
		t.Errorf("name = %q", prog.Name)
	}
	info, err := prog.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var c trace.Counter
	res, err := interp.Run(info, nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 3*1024 {
		t.Errorf("accesses = %d, want 3072", res.Accesses)
	}
	if c.Writes != 1024 || c.Reads != 2*1024 {
		t.Errorf("reads/writes = %d/%d", c.Reads, c.Writes)
	}
	// The loop scope carries its source line.
	loop := workloads.FindScope(info, scope.KindLoop, "i")
	if info.Scopes.Node(loop).Line != 3 {
		t.Errorf("loop line = %d, want 3", info.Scopes.Node(loop).Line)
	}
	// Parameters override as usual.
	var c2 trace.Counter
	if _, err := interp.Run(info, map[string]int64{"N": 10}, &c2); err != nil {
		t.Fatal(err)
	}
	if c2.Accesses != 30 {
		t.Errorf("overridden accesses = %d, want 30", c2.Accesses)
	}
}

const fullSrc = `
program full
param N 64
param T 3
array A f64 [N, N]
array B f64 [N]
dataarray idx i64 [N]

routine kernel file k.f line 10 {
  for j = 0 .. N-1 by 2 line 12 {
    let m = min(j+1, N-1)
    if m < 32 {
      access A[j, m]
    } else {
      access A[m, j]!
    }
    access B[idx[j]]
  }
}

routine main file main.f line 1 {
  timestep for t = 0 .. T-1 line 2 {
    call kernel
  }
}
`

func TestParseFullLanguage(t *testing.T) {
	prog, _, err := Parse(fullSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := prog.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// "main" is the entry even though kernel was declared first.
	if prog.Main == nil || prog.Main.Name != "main" {
		t.Fatalf("main routine = %+v", prog.Main)
	}
	// The timestep marker made it through.
	ts := workloads.FindScope(info, scope.KindLoop, "t")
	if !info.Scopes.Node(ts).TimeStep {
		t.Error("timestep loop not marked")
	}
	// Runs cleanly with an initialized index array.
	res, err := interp.Run(info, nil, trace.Discard{}, interp.WithInit(func(m *interp.Machine) error {
		for _, a := range prog.Arrays {
			if a.Name == "idx" {
				m.FillData(a, func(i int64) int64 { return i % 64 })
			}
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Per time step: N/2 = 32 iterations, 2 accesses each (A + B).
	if want := uint64(3 * 32 * 2); res.Accesses != want {
		t.Errorf("accesses = %d, want %d", res.Accesses, want)
	}
	// The "by 2" stride reached the loop.
	j := workloads.FindScope(info, scope.KindLoop, "j")
	if got := res.Trips[j]; got.Execs != 3 || got.Iters != 3*32 {
		t.Errorf("j trips = %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing program", "param N 4\n", `expected "program"`},
		{"bad decl", "program p\nwidget w\n", "expected param"},
		{"bad type", "program p\narray A f16 [4]\nroutine main {}\n", "unknown element type"},
		{"undeclared array", "program p\nroutine main { for i = 0 .. 3 { access Q[i] } }", "undeclared array"},
		{"undeclared call", "program p\nroutine main { call nope }", "undeclared routine"},
		{"redeclared array", "program p\narray A f64 [4]\narray A f64 [4]\nroutine main {}\n", "redeclared"},
		{"redeclared routine", "program p\nroutine main {}\nroutine main {}\n", "redeclared"},
		{"no routines", "program p\nparam N 4\n", "no routines"},
		{"unterminated block", "program p\nroutine main { for i = 0 .. 3 {", "unexpected end"},
		{"non-data index", "program p\narray A f64 [4]\narray B f64 [4]\nroutine main { for i = 0 .. 3 { access B[A[i]] } }", "must be a dataarray"},
		{"bad cmp", "program p\nroutine main { if 1 = 2 { } }", "comparison"},
		{"bad char", "program p\nroutine main { access @ }", "unexpected character"},
	}
	for _, c := range cases {
		_, _, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestExpressionPrecedence(t *testing.T) {
	src := `
program prec
array A f64 [100]
routine main {
  for i = 0 .. 0 {
    access A[2+3*4-10/2]
  }
}
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := prog.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	if _, err := interp.Run(info, nil, &rec); err != nil {
		t.Fatal(err)
	}
	// 2+12-5 = 9; element 9 of an 8-byte array: offset 72 from the base.
	var addr uint64
	for _, e := range rec.Events {
		if e.Kind == trace.EvAccess {
			addr = e.Addr
		}
	}
	mach, _ := interp.Layout(info, nil)
	if want := mach.ArrayBase(prog.Arrays[0]) + 72; addr != want {
		t.Errorf("addr = %d, want %d", addr, want)
	}
}

func TestUnaryMinusAndComments(t *testing.T) {
	src := `
program neg
param N 8
array A f64 [N]
routine main {
  for i = 0 .. N-1 {
    # negative offsets clamp back via max
    access A[max(-1*i + N-1, 0)]
  }
}
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := prog.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(info, nil, trace.Discard{}); err != nil {
		t.Fatal(err)
	}
}

func TestInitDeclarations(t *testing.T) {
	src := `
program gather
param N 256
dataarray idx i64 [N]
array A f64 [N]
init idx stride 7

routine main {
  for i = 0 .. N-1 {
    access A[idx[i]]
  }
}
`
	prog, init, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if init == nil {
		t.Fatal("no initializer returned")
	}
	info, err := prog.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	if _, err := interp.Run(info, nil, &rec, interp.WithInit(init)); err != nil {
		t.Fatal(err)
	}
	// idx[1] = 7: the second access targets element 7.
	var addrs []uint64
	for _, e := range rec.Events {
		if e.Kind == trace.EvAccess {
			addrs = append(addrs, e.Addr)
		}
	}
	if addrs[1]-addrs[0] != 7*8 {
		t.Errorf("stride init wrong: delta %d, want 56", addrs[1]-addrs[0])
	}
	// Other kinds parse and run.
	for _, kind := range []string{"identity", "random 42", "const 3"} {
		src2 := "program g\nparam N 64\ndataarray d i64 [N]\narray A f64 [N]\ninit d " + kind +
			"\nroutine main { for i = 0 .. N-1 { access A[min(d[i], N-1)] } }"
		p2, init2, err := Parse(src2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		info2, err := p2.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := interp.Run(info2, nil, trace.Discard{}, interp.WithInit(init2)); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	// Bad init targets fail at parse time.
	if _, _, err := Parse("program p\narray A f64 [4]\ninit A identity\nroutine main {}"); err == nil {
		t.Error("init on non-data array should fail")
	}
	if _, _, err := Parse("program p\ndataarray d i64 [4]\ninit d bogus\nroutine main {}"); err == nil {
		t.Error("unknown init kind should fail")
	}
}
