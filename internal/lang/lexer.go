// Package lang parses a small loop-nest language into ir programs, so
// workloads can be described in text files instead of Go code:
//
//	program saxpy
//	param N 4096
//	array X f64 [N]
//	array Y f64 [N]
//
//	routine main file saxpy.f line 1 {
//	  for i = 0 .. N-1 line 3 {
//	    access X[i], Y[i], Y[i]!
//	  }
//	}
//
// Statements: for (optionally "by <step>", "line <n>", "timestep"),
// let, if/else, access (trailing "!" marks a write), call. Expressions:
// integer arithmetic (+ - * / %), min/max, parenthesization, and
// data-array indexing d[e] which becomes an indirection (ir.Load).
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single punctuation or operator, incl. ".." and "!"
	tokString
)

type token struct {
	kind tokKind
	text string
	line int
}

// lexer splits input into tokens, tracking line numbers and skipping
// '#' comments.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(filename, src string) ([]token, error) {
	lx := &lexer{src: src, line: 1}
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case isIdentStart(rune(c)):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
				// A "." may appear inside identifiers (file names like
				// saxpy.f) but ".." always reads as the range operator.
				if lx.src[lx.pos] == '.' &&
					(lx.pos+1 >= len(lx.src) || lx.src[lx.pos+1] == '.') {
					break
				}
				lx.pos++
			}
			lx.emit(tokIdent, lx.src[start:lx.pos])
		case c >= '0' && c <= '9':
			start := lx.pos
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
			lx.emit(tokNumber, lx.src[start:lx.pos])
		case c == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '.':
			lx.emit(tokPunct, "..")
			lx.pos += 2
		case strings.ContainsRune("{}[](),=+-*/%!<>", rune(c)):
			// Two-char comparisons.
			if lx.pos+1 < len(lx.src) {
				two := lx.src[lx.pos : lx.pos+2]
				switch two {
				case "==", "!=", "<=", ">=":
					lx.emit(tokPunct, two)
					lx.pos += 2
					continue
				}
			}
			lx.emit(tokPunct, string(c))
			lx.pos++
		default:
			return nil, fmt.Errorf("lang: %s:%d: unexpected character %q", filename, lx.line, c)
		}
	}
	lx.emit(tokEOF, "")
	return lx.toks, nil
}

func (lx *lexer) emit(kind tokKind, text string) {
	lx.toks = append(lx.toks, token{kind: kind, text: text, line: lx.line})
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
