package lang

import (
	"testing"

	"reusetool/internal/workloads"
)

// builtinSources formats every built-in workload as .loop text — the fuzz
// seeds and the round-trip fixtures.
func builtinSources(t testing.TB) map[string]string {
	t.Helper()
	out := map[string]string{}
	add := func(name string, src string) { out[name] = src }
	add("fig1a", Format(workloads.Fig1(false)))
	add("fig1b", Format(workloads.Fig1(true)))
	add("fig2", Format(workloads.Fig2()))
	add("stream", Format(workloads.Stream(1<<10, 2)))
	add("stencil", Format(workloads.Stencil(64, 2)))
	add("transpose", Format(workloads.Transpose(64)))
	sw, err := workloads.Sweep3D(workloads.DefaultSweep3D())
	if err != nil {
		t.Fatal(err)
	}
	add("sweep3d", Format(sw))
	gtc, _, err := workloads.GTC(workloads.DefaultGTC())
	if err != nil {
		t.Fatal(err)
	}
	add("gtc", Format(gtc))
	return out
}

// roundTrip parses src and, on success, checks that formatting is a
// fixpoint: parse(src) formats to text that parses back to the same text.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	prog, _, err := Parse(src)
	if err != nil {
		return // invalid input: only crashes and hangs are failures
	}
	first := Format(prog)
	prog2, _, err := Parse(first)
	if err != nil {
		t.Fatalf("reparse of formatted program failed: %v\nprogram:\n%s", err, first)
	}
	second := Format(prog2)
	if first != second {
		t.Errorf("format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

func TestBuiltinWorkloadsRoundTrip(t *testing.T) {
	for name, src := range builtinSources(t) {
		t.Run(name, func(t *testing.T) {
			prog, _, err := Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got := Format(prog); got != src {
				t.Errorf("parse→format changed the text:\noriginal:\n%s\ngot:\n%s", src, got)
			}
			roundTrip(t, src)
		})
	}
}

func FuzzParseRoundTrip(f *testing.F) {
	for _, src := range builtinSources(f) {
		f.Add(src)
	}
	// A few handwritten edge cases: empty, minimal, and malformed inputs.
	f.Add("")
	f.Add("program p\nmain {\n}\n")
	f.Add("program p\nparam N = 4\narray A[N] elem 8\nmain {\n  loop i = 0..N-1 {\n    load A[i]\n  }\n}\n")
	f.Add("program p\nmain {\n  loop i = 0..")
	f.Fuzz(func(t *testing.T, src string) {
		roundTrip(t, src)
	})
}
