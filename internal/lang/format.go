package lang

import (
	"fmt"
	"sort"
	"strings"

	"reusetool/internal/ir"
)

// Format renders a program as .loop source. Round trip holds for any
// program the language can express: Parse(Format(p)) builds a program
// with the identical event stream (data-array contents excepted — init
// functions written in Go are not serializable; programs using only the
// DSL's init declarations round-trip fully).
func Format(prog *ir.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", sanitizeIdent(prog.Name))

	names := make([]string, 0, len(prog.Defaults))
	for n := range prog.Defaults {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "param %s %d\n", n, prog.Defaults[n])
	}

	for _, a := range prog.Arrays {
		kw, ty := "array", typeFor(a.Elem, false)
		if a.Data {
			kw, ty = "dataarray", typeFor(a.Elem, true)
		}
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.String()
		}
		fmt.Fprintf(&b, "%s %s %s [%s]\n", kw, a.Name, ty, strings.Join(dims, ", "))
	}

	// The entry routine goes first so declaration order alone makes it
	// Main on re-parse (unless a routine is literally named "main", which
	// the parser prefers regardless of order).
	routines := make([]*ir.Routine, 0, len(prog.Routines))
	if prog.Main != nil {
		routines = append(routines, prog.Main)
	}
	for _, r := range prog.Routines {
		if r != prog.Main {
			routines = append(routines, r)
		}
	}
	for _, r := range routines {
		fmt.Fprintf(&b, "\nroutine %s file %s line %d {\n",
			sanitizeIdent(r.Name), sanitizeIdent(r.File), r.Line)
		formatBody(&b, r.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func typeFor(elem int64, data bool) string {
	switch elem {
	case 8:
		if data {
			return "i64"
		}
		return "f64"
	case 4:
		return "f32"
	case 1:
		return "i8"
	default:
		// The language has no type of this size; f64 keeps the program
		// parseable while DESIGN-level sizes stay 1/4/8 in practice.
		return "f64"
	}
}

func formatBody(b *strings.Builder, body []ir.Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case *ir.Loop:
			if st.TimeStep {
				fmt.Fprintf(b, "%stimestep ", ind)
			} else {
				b.WriteString(ind)
			}
			fmt.Fprintf(b, "for %s = %s .. %s", st.Var.Name, st.Lo, st.Hi)
			if step := int64(st.Step.(ir.Const)); step != 1 {
				fmt.Fprintf(b, " by %d", step)
			}
			if st.Line != 0 {
				fmt.Fprintf(b, " line %d", st.Line)
			}
			b.WriteString(" {\n")
			formatBody(b, st.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)

		case *ir.Let:
			fmt.Fprintf(b, "%slet %s = %s\n", ind, st.Var.Name, st.E)

		case *ir.If:
			fmt.Fprintf(b, "%sif %s {\n", ind, st.Cond)
			formatBody(b, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				formatBody(b, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)

		case *ir.Access:
			refs := make([]string, len(st.Refs))
			for i, r := range st.Refs {
				idx := make([]string, len(r.Index))
				for j, e := range r.Index {
					idx[j] = e.String()
				}
				suffix := ""
				if r.Write {
					suffix = "!"
				}
				refs[i] = fmt.Sprintf("%s[%s]%s", r.Array.Name, strings.Join(idx, ", "), suffix)
			}
			fmt.Fprintf(b, "%saccess %s\n", ind, strings.Join(refs, ", "))

		case *ir.Call:
			fmt.Fprintf(b, "%scall %s\n", ind, sanitizeIdent(st.Callee.Name))

		default:
			fmt.Fprintf(b, "%s# unrepresentable statement %T\n", ind, s)
		}
	}
}

// sanitizeIdent maps arbitrary names onto the language's identifier
// grammar (variant names like "sweep3d-Blk6+dimIC" contain punctuation).
func sanitizeIdent(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
