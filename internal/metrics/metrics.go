// Package metrics computes the paper's performance metrics from the
// dynamic reuse-distance data and the static fragmentation analysis:
//
//   - predicted cache misses per reference and reuse pattern, per level;
//   - miss counts attributed to scopes (exclusive and inclusive over the
//     static scope tree);
//   - carried misses per scope — the misses produced by reuse patterns a
//     scope carries — with source/destination breakdowns;
//   - fragmentation miss counts per array and per loop (Section III);
//   - irregular-pattern miss counts;
//   - the flat reuse-pattern database of Section IV, sortable by miss
//     contribution.
package metrics

import (
	"fmt"
	"sort"

	"reusetool/internal/cache"
	"reusetool/internal/reusedist"
	"reusetool/internal/scope"
	"reusetool/internal/staticanalysis"
	"reusetool/internal/symbolic"
	"reusetool/internal/trace"
)

// Source supplies the static program structure a report is built against:
// the scope tree plus names for references and the arrays they touch.
// ir.Info implements it for IR workloads; tracefile.Meta implements it for
// externally recorded traces.
type Source interface {
	// Name identifies the analyzed program.
	Name() string
	// Tree is the static scope tree the trace's scope IDs refer to.
	Tree() *scope.Tree
	// RefLabel describes a reference site: its rendered name and the name
	// of the data object (array/variable) it accesses. ok is false for
	// unknown references.
	RefLabel(id trace.RefID) (refName, arrayName string, ok bool)
}

// Model selects how histograms become miss counts.
type Model uint8

// Miss models.
const (
	// SetAssoc uses the probabilistic set-associative model (the paper's
	// predictor).
	SetAssoc Model = iota
	// FullyAssoc uses exact threshold counts at the level's capacity,
	// matching a fully-associative LRU simulation bit for bit.
	FullyAssoc
)

// PatternRecord is one row of the reuse-pattern database: one reference,
// one (source, carrying) pair, at one cache level.
type PatternRecord struct {
	Ref      trace.RefID
	RefName  string
	Array    string
	Dest     trace.ScopeID
	Source   trace.ScopeID
	Carrying trace.ScopeID
	// Count is the number of reuse arcs.
	Count uint64
	// Misses is the predicted miss count of this pattern at this level.
	Misses float64
	// Irregular marks patterns whose carrying scope induces an irregular
	// or indirect stride at the destination reference.
	Irregular bool
	// FragFactor is the fragmentation factor of the reference's related
	// group (-1 if unknown).
	FragFactor float64
	// FragMisses = max(FragFactor,0) * Misses.
	FragMisses float64
}

// LevelReport aggregates one cache level.
type LevelReport struct {
	Level cache.Level
	// Patterns is the flat pattern database, sorted by descending misses.
	Patterns []*PatternRecord
	// ColdMisses counts compulsory misses (first touch of a block).
	ColdMisses float64
	// TotalMisses includes cold misses.
	TotalMisses float64
	// CapacityMisses estimates non-compulsory misses a fully-associative
	// cache of the same size would also take (exact threshold counts),
	// and ConflictMisses the additional misses attributable to limited
	// associativity (the set-associative prediction's excess) — the
	// classic three-C classification with Compulsory = ColdMisses.
	CapacityMisses float64
	ConflictMisses float64
	// Accesses is the number of block-granularity accesses.
	Accesses uint64
	// MissesByScope is the exclusive per-destination-scope miss count
	// (cold misses attributed to the reference's scope). Indexed by
	// ScopeID.
	MissesByScope []float64
	// AccessesByScope is the per-scope block-access count (same indexing),
	// the denominator for per-scope miss rates.
	AccessesByScope []float64
	// CarriedByScope[s] is the number of misses carried by scope s.
	CarriedByScope []float64
	// FragMissesByScope attributes fragmentation misses to destination
	// scopes.
	FragMissesByScope []float64
	// IrregularMisses sums misses of irregular patterns.
	IrregularMisses float64
	// MissesByRef is the per-reference predicted miss count (cold plus all
	// patterns) — the unit static-vs-dynamic validation compares at.
	MissesByRef map[trace.RefID]float64
	// MissesByArray and FragMissesByArray aggregate by data array name —
	// the paper's per-variable attribution.
	MissesByArray     map[string]float64
	FragMissesByArray map[string]float64
}

// Report is the full analysis output for one run.
type Report struct {
	Source Source
	Hier   *cache.Hierarchy
	Levels []*LevelReport
}

// Tree returns the report's scope tree.
func (r *Report) Tree() *scope.Tree { return r.Source.Tree() }

// Level returns the named level report, or nil.
func (r *Report) Level(name string) *LevelReport {
	for _, l := range r.Levels {
		if l.Level.Name == name {
			return l
		}
	}
	return nil
}

// Build computes a Report from the collected reuse-distance data, the
// static analysis, and a hierarchy. static may be nil (no fragmentation or
// irregularity attribution — e.g. for externally recorded traces).
func Build(src Source, col *reusedist.Collector, static *staticanalysis.Result,
	hier *cache.Hierarchy, model Model) (*Report, error) {

	rep := &Report{Source: src, Hier: hier}
	tree := src.Tree()
	nScopes := tree.Len()

	for _, level := range hier.Levels {
		eng, thIdx := col.LevelAt(level.Name, level.LineBits)
		if eng == nil {
			return nil, fmt.Errorf("metrics: collector has no data for level %q at %d-byte blocks",
				level.Name, level.LineSize())
		}
		lr := &LevelReport{
			Level:             level,
			MissesByScope:     make([]float64, nScopes),
			AccessesByScope:   make([]float64, nScopes),
			CarriedByScope:    make([]float64, nScopes),
			FragMissesByScope: make([]float64, nScopes),
			MissesByArray:     map[string]float64{},
			FragMissesByArray: map[string]float64{},
			MissesByRef:       map[trace.RefID]float64{},
		}
		lr.Accesses = eng.TotalAccesses()
		for s, n := range eng.AccessesByScope() {
			if s < nScopes {
				lr.AccessesByScope[s] = float64(n)
			}
		}

		for _, rd := range eng.Refs() {
			refName, arrName, ok := src.RefLabel(rd.Ref)
			if !ok {
				return nil, fmt.Errorf("metrics: unknown reference %d", rd.Ref)
			}
			frag := -1.0
			if static != nil {
				frag = static.FragOf(rd.Ref)
			}

			// Compulsory misses: always misses, attributed to the
			// destination scope.
			cold := float64(rd.Cold)
			lr.ColdMisses += cold
			lr.TotalMisses += cold
			if tree.Valid(rd.Scope) {
				lr.MissesByScope[rd.Scope] += cold
			}
			lr.MissesByArray[arrName] += cold
			lr.MissesByRef[rd.Ref] += cold

			// SortedPatterns (not the Patterns map) so the report — and
			// its serialized XML — is byte-identical across runs.
			for _, p := range rd.SortedPatterns(thIdx) {
				fa := float64(p.MissAt[thIdx])
				var misses float64
				switch model {
				case SetAssoc:
					misses = level.ExpectedMisses(p.Hist)
				case FullyAssoc:
					misses = fa
				default:
					return nil, fmt.Errorf("metrics: unknown model %d", model)
				}
				lr.CapacityMisses += fa
				if misses > fa {
					lr.ConflictMisses += misses - fa
				}
				irregular := false
				if static != nil && tree.Valid(p.Key.Carrying) {
					cls := static.StrideWRTScope(rd.Ref, p.Key.Carrying).Class
					irregular = cls == symbolic.StrideIrregular || cls == symbolic.StrideIndirect
				}
				fragMisses := 0.0
				if frag > 0 {
					fragMisses = frag * misses
				}
				rec := &PatternRecord{
					Ref:        rd.Ref,
					RefName:    refName,
					Array:      arrName,
					Dest:       rd.Scope,
					Source:     p.Key.Source,
					Carrying:   p.Key.Carrying,
					Count:      p.Count,
					Misses:     misses,
					Irregular:  irregular,
					FragFactor: frag,
					FragMisses: fragMisses,
				}
				lr.Patterns = append(lr.Patterns, rec)
				lr.TotalMisses += misses
				lr.MissesByArray[arrName] += misses
				lr.MissesByRef[rd.Ref] += misses
				if tree.Valid(rd.Scope) {
					lr.MissesByScope[rd.Scope] += misses
					lr.FragMissesByScope[rd.Scope] += fragMisses
				}
				if tree.Valid(p.Key.Carrying) {
					lr.CarriedByScope[p.Key.Carrying] += misses
				}
				if irregular {
					lr.IrregularMisses += misses
				}
				if fragMisses > 0 {
					lr.FragMissesByArray[arrName] += fragMisses
				}
			}
		}

		sort.SliceStable(lr.Patterns, func(i, j int) bool {
			a, b := lr.Patterns[i], lr.Patterns[j]
			if a.Misses != b.Misses {
				return a.Misses > b.Misses
			}
			// Total order on ties, for run-to-run reproducible reports.
			if a.Ref != b.Ref {
				return a.Ref < b.Ref
			}
			if a.Source != b.Source {
				return a.Source < b.Source
			}
			return a.Carrying < b.Carrying
		})
		rep.Levels = append(rep.Levels, lr)
	}
	return rep, nil
}

// InclusiveMisses rolls exclusive per-scope misses up the scope tree.
func (lr *LevelReport) InclusiveMisses(tree interface {
	Inclusive([]float64) []float64
}) []float64 {
	return tree.Inclusive(lr.MissesByScope)
}

// MissRate reports the exclusive per-scope miss rate (misses per block
// access) at scope s, or 0 when the scope performed no accesses.
func (lr *LevelReport) MissRate(s trace.ScopeID) float64 {
	if s < 0 || int(s) >= len(lr.AccessesByScope) || lr.AccessesByScope[s] == 0 {
		return 0
	}
	return lr.MissesByScope[s] / lr.AccessesByScope[s]
}

// CarriedPercent reports the fraction (0..1) of the level's misses carried
// by scope s.
func (lr *LevelReport) CarriedPercent(s trace.ScopeID) float64 {
	if lr.TotalMisses == 0 || int(s) >= len(lr.CarriedByScope) || s < 0 {
		return 0
	}
	return lr.CarriedByScope[s] / lr.TotalMisses
}

// TopCarriers returns scope IDs ordered by descending carried misses,
// limited to n (all if n <= 0).
func (lr *LevelReport) TopCarriers(n int) []trace.ScopeID {
	ids := make([]trace.ScopeID, len(lr.CarriedByScope))
	for i := range ids {
		ids[i] = trace.ScopeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return lr.CarriedByScope[ids[a]] > lr.CarriedByScope[ids[b]]
	})
	if n > 0 && n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

// TopFragArrays returns array names ordered by descending fragmentation
// misses, limited to n (all if n <= 0).
func (lr *LevelReport) TopFragArrays(n int) []string {
	names := make([]string, 0, len(lr.FragMissesByArray))
	for a := range lr.FragMissesByArray {
		names = append(names, a)
	}
	sort.SliceStable(names, func(i, j int) bool {
		fi, fj := lr.FragMissesByArray[names[i]], lr.FragMissesByArray[names[j]]
		if fi != fj {
			return fi > fj
		}
		return names[i] < names[j]
	})
	if n > 0 && n < len(names) {
		names = names[:n]
	}
	return names
}

// ArrayPatterns returns the level's patterns touching the named array,
// sorted by descending misses.
func (lr *LevelReport) ArrayPatterns(array string) []*PatternRecord {
	var out []*PatternRecord
	for _, p := range lr.Patterns {
		if p.Array == array {
			out = append(out, p)
		}
	}
	return out
}

// CarriedBreakdown returns, for the misses carried by scope s, the
// per-(source, destination) split — the data behind Table II's rows.
type CarriedSlice struct {
	Source trace.ScopeID
	Dest   trace.ScopeID
	Array  string
	Misses float64
}

// CarriedBreakdown lists the patterns carried by s, aggregated by
// (source, dest, array), sorted by descending misses.
func (lr *LevelReport) CarriedBreakdown(s trace.ScopeID) []CarriedSlice {
	type key struct {
		src, dst trace.ScopeID
		arr      string
	}
	agg := map[key]float64{}
	for _, p := range lr.Patterns {
		if p.Carrying != s {
			continue
		}
		agg[key{p.Source, p.Dest, p.Array}] += p.Misses
	}
	out := make([]CarriedSlice, 0, len(agg))
	for k, m := range agg {
		out = append(out, CarriedSlice{Source: k.src, Dest: k.dst, Array: k.arr, Misses: m})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		if out[i].Array != out[j].Array {
			return out[i].Array < out[j].Array
		}
		return out[i].Source < out[j].Source
	})
	return out
}
