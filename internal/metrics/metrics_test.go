package metrics

import (
	"math"
	"testing"

	"reusetool/internal/cache"
	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/reusedist"
	"reusetool/internal/staticanalysis"
	"reusetool/internal/trace"
)

// smallHier is a tiny hierarchy so the test workloads produce both hits
// and misses.
func smallHier() *cache.Hierarchy {
	return &cache.Hierarchy{
		Name: "tiny",
		Levels: []cache.Level{
			{Name: "C1", LineBits: 6, Sets: 1, Assoc: 8, Latency: 10},   // 8 lines FA
			{Name: "C2", LineBits: 6, Sets: 1, Assoc: 128, Latency: 50}, // 128 lines FA
		},
	}
}

// analyze runs a program through the collector + static analysis + Build.
func analyze(t *testing.T, p *ir.Program, hier *cache.Hierarchy, model Model) (*Report, *ir.Info) {
	t.Helper()
	info, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	col := reusedist.NewCollector(hier.Granularities(), 0, false)
	run, err := interp.Run(info, nil, col)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := interp.Layout(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	static := staticanalysis.Analyze(info, mach, staticanalysis.TripsFromRun(run, 1))
	rep, err := Build(info, col, static, hier, model)
	if err != nil {
		t.Fatal(err)
	}
	return rep, info
}

// timeLoopProgram: an outer time loop re-streams an array that far
// exceeds C1 but fits in C2.
func timeLoopProgram() (*ir.Program, *ir.Loop, *ir.Loop) {
	p := ir.NewProgram("timeloop")
	n := p.Param("N", 64) // 64 lines of 8 elements
	a := p.AddArray("A", 8, ir.Mul(n, ir.C(8)))
	tv, i := p.Var("t"), p.Var("i")
	main := p.AddRoutine("main", "f", 1)
	inner := ir.For(i, ir.C(0), ir.Sub(ir.Mul(n, ir.C(8)), ir.C(1)), ir.Do(a.Read(i))).At(3)
	outer := ir.For(tv, ir.C(0), ir.C(9), inner).AsTimeStep().At(2)
	main.Body = []ir.Stmt{outer}
	return p, outer, inner
}

func TestCarriedMissesTimeLoop(t *testing.T) {
	p, outer, inner := timeLoopProgram()
	rep, info := analyze(t, p, smallHier(), FullyAssoc)

	c1 := rep.Level("C1")
	if c1 == nil {
		t.Fatal("no C1 report")
	}
	// 64 lines > 8-line C1: every revisit misses. 10 passes over 64 lines:
	// 64 cold + 9*64 carried-by-t misses.
	if c1.ColdMisses != 64 {
		t.Errorf("cold = %v, want 64", c1.ColdMisses)
	}
	if c1.TotalMisses != 640 {
		t.Errorf("total = %v, want 640", c1.TotalMisses)
	}
	carried := c1.CarriedByScope[outer.Scope()]
	if carried != 576 {
		t.Errorf("carried by time loop = %v, want 576", carried)
	}
	if got := c1.CarriedPercent(outer.Scope()); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("carried percent = %v, want 0.9", got)
	}
	// C2 holds the whole array: only cold misses, nothing carried.
	c2 := rep.Level("C2")
	if c2.TotalMisses != 64 {
		t.Errorf("C2 total = %v, want 64 (cold only)", c2.TotalMisses)
	}
	if c2.CarriedByScope[outer.Scope()] != 0 {
		t.Errorf("C2 carried = %v, want 0", c2.CarriedByScope[outer.Scope()])
	}
	// Top carrier at C1 is the time loop.
	top := c1.TopCarriers(1)
	if len(top) != 1 || top[0] != outer.Scope() {
		t.Errorf("top carrier = %v, want time loop scope %d", top, outer.Scope())
	}
	// The inner loop carries nothing here (each line touched once per pass
	// within the loop... all its reuse arcs come from the previous pass).
	if c1.CarriedByScope[inner.Scope()] != 0 {
		t.Errorf("inner loop carried = %v, want 0", c1.CarriedByScope[inner.Scope()])
	}
	// Scope tree marked the time-step loop.
	if !info.Scopes.Node(outer.Scope()).TimeStep {
		t.Error("outer loop should be marked TimeStep")
	}
}

func TestMissesByScopeAndInclusive(t *testing.T) {
	p, _, inner := timeLoopProgram()
	rep, info := analyze(t, p, smallHier(), FullyAssoc)
	c1 := rep.Level("C1")
	// All misses happen at the reference in the inner loop.
	if got := c1.MissesByScope[inner.Scope()]; got != 640 {
		t.Errorf("misses at inner scope = %v, want 640", got)
	}
	incl := info.Scopes.Inclusive(c1.MissesByScope)
	if incl[info.Scopes.Root()] != 640 {
		t.Errorf("inclusive at root = %v, want 640", incl[info.Scopes.Root()])
	}
}

func TestPatternDatabaseSortedAndConsistent(t *testing.T) {
	p, _, _ := timeLoopProgram()
	rep, _ := analyze(t, p, smallHier(), FullyAssoc)
	c1 := rep.Level("C1")
	if len(c1.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	for i := 1; i < len(c1.Patterns); i++ {
		if c1.Patterns[i].Misses > c1.Patterns[i-1].Misses {
			t.Fatal("patterns not sorted by misses")
		}
	}
	// Sum of pattern misses + cold == total.
	var sum float64
	for _, pr := range c1.Patterns {
		sum += pr.Misses
	}
	if math.Abs(sum+c1.ColdMisses-c1.TotalMisses) > 1e-9 {
		t.Errorf("pattern sum %v + cold %v != total %v", sum, c1.ColdMisses, c1.TotalMisses)
	}
}

func TestFragmentationAttribution(t *testing.T) {
	// AoS field walk: frag factor 1-8/56; fragmentation misses must be
	// that fraction of the array's pattern misses.
	p := ir.NewProgram("aos")
	n := p.Param("N", 512)
	zion := p.AddArray("zion", 8, ir.C(7), n)
	tv, i := p.Var("t"), p.Var("i")
	main := p.AddRoutine("main", "f", 1)
	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.C(4),
			ir.For(i, ir.C(0), ir.Sub(n, ir.C(1)),
				ir.Do(zion.Read(ir.C(2), i)))),
	}
	rep, _ := analyze(t, p, smallHier(), FullyAssoc)
	c1 := rep.Level("C1")
	wantFrag := 1 - 8.0/56.0
	var patMisses float64
	for _, pr := range c1.Patterns {
		if pr.Array != "zion" {
			continue
		}
		if math.Abs(pr.FragFactor-wantFrag) > 1e-12 {
			t.Errorf("pattern frag factor = %v, want %v", pr.FragFactor, wantFrag)
		}
		patMisses += pr.Misses
	}
	got := c1.FragMissesByArray["zion"]
	if math.Abs(got-wantFrag*patMisses) > 1e-9 {
		t.Errorf("frag misses = %v, want %v", got, wantFrag*patMisses)
	}
	if arrs := c1.TopFragArrays(1); len(arrs) != 1 || arrs[0] != "zion" {
		t.Errorf("TopFragArrays = %v", arrs)
	}
}

func TestIrregularMissClassification(t *testing.T) {
	// Gather through a permutation repeatedly: reuse carried by the time
	// loop is fine, but reuse carried by the gather loop is indirect.
	p := ir.NewProgram("gather")
	n := p.Param("N", 256)
	idx := p.AddDataArray("idx", 8, n)
	a := p.AddArray("A", 8, n)
	tv, i := p.Var("t"), p.Var("i")
	main := p.AddRoutine("main", "f", 1)
	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.C(4),
			ir.For(i, ir.C(0), ir.Sub(n, ir.C(1)),
				ir.Do(a.Read(&ir.Load{Array: idx, Index: []ir.Expr{i}})))),
	}
	info, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	hier := smallHier()
	col := reusedist.NewCollector(hier.Granularities(), 0, false)
	run, err := interp.Run(info, nil, col, interp.WithInit(func(m *interp.Machine) error {
		nn := m.Param("N")
		// A permutation that revisits lines within the same i-loop pass:
		// idx alternates between the two halves.
		m.FillData(idx, func(k int64) int64 {
			if k%2 == 0 {
				return k / 2
			}
			return nn/2 + k/2
		})
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	mach, _ := interp.Layout(info, nil)
	static := staticanalysis.Analyze(info, mach, staticanalysis.TripsFromRun(run, 1))
	rep, err := Build(info, col, static, hier, FullyAssoc)
	if err != nil {
		t.Fatal(err)
	}
	c1 := rep.Level("C1")
	// Patterns carried by the i loop must be classified irregular.
	var sawIrregular bool
	for _, pr := range c1.Patterns {
		l, ok := info.LoopByScope[pr.Carrying]
		if ok && l.Var.Name == "i" {
			if !pr.Irregular {
				t.Errorf("pattern carried by gather loop not irregular: %+v", pr)
			}
			sawIrregular = true
		}
	}
	if !sawIrregular {
		t.Log("no pattern carried by i loop; irregular accounting unexercised")
	}
	if c1.IrregularMisses < 0 {
		t.Error("irregular misses negative")
	}
}

func TestCarriedBreakdown(t *testing.T) {
	// Producer writes A in one loop, consumer reads it in another; the
	// routine body carries the reuse from producer to consumer.
	p := ir.NewProgram("prodcons")
	n := p.Param("N", 128)
	a := p.AddArray("A", 8, ir.Mul(n, ir.C(8)))
	tv, i, j := p.Var("t"), p.Var("i"), p.Var("j")
	main := p.AddRoutine("main", "f", 1)
	prod := ir.For(i, ir.C(0), ir.Sub(ir.Mul(n, ir.C(8)), ir.C(1)), ir.Do(a.WriteRef(i))).At(10)
	cons := ir.For(j, ir.C(0), ir.Sub(ir.Mul(n, ir.C(8)), ir.C(1)), ir.Do(a.Read(j))).At(20)
	outer := ir.For(tv, ir.C(0), ir.C(3), prod, cons).At(5)
	main.Body = []ir.Stmt{outer}
	rep, _ := analyze(t, p, smallHier(), FullyAssoc)
	c1 := rep.Level("C1")

	bd := c1.CarriedBreakdown(outer.Scope())
	if len(bd) == 0 {
		t.Fatal("no carried breakdown for outer loop")
	}
	// Both (prod -> cons) and (cons -> prod) slices must appear: the
	// consumer reuses what the producer wrote within the same t iteration
	// is carried by t? No: prod->cons within one iteration is carried by
	// outer's body... the carrying scope is outer (the innermost scope
	// containing both). Check at least that sources and dests are the two
	// loops.
	seen := map[[2]trace.ScopeID]bool{}
	for _, s := range bd {
		seen[[2]trace.ScopeID{s.Source, s.Dest}] = true
		if s.Array != "A" {
			t.Errorf("array = %q", s.Array)
		}
	}
	if !seen[[2]trace.ScopeID{prod.Scope(), cons.Scope()}] {
		t.Error("missing producer->consumer slice")
	}
	if !seen[[2]trace.ScopeID{cons.Scope(), prod.Scope()}] {
		t.Error("missing consumer->producer slice")
	}
	// Breakdown sums to the carried count.
	var sum float64
	for _, s := range bd {
		sum += s.Misses
	}
	if math.Abs(sum-c1.CarriedByScope[outer.Scope()]) > 1e-9 {
		t.Errorf("breakdown sum %v != carried %v", sum, c1.CarriedByScope[outer.Scope()])
	}
}

func TestSetAssocModelClose(t *testing.T) {
	p, _, _ := timeLoopProgram()
	repFA, _ := analyze(t, p, smallHier(), FullyAssoc)
	repSA, _ := analyze(t, p, smallHier(), SetAssoc)
	// Both hierarchies here are fully associative, so the "set assoc"
	// model must agree closely with the exact counts.
	fa := repFA.Level("C1").TotalMisses
	sa := repSA.Level("C1").TotalMisses
	if math.Abs(fa-sa)/fa > 0.02 {
		t.Errorf("SetAssoc %v vs FullyAssoc %v differ by more than 2%%", sa, fa)
	}
}

func TestArrayPatternsFilter(t *testing.T) {
	p, _, _ := timeLoopProgram()
	rep, _ := analyze(t, p, smallHier(), FullyAssoc)
	c1 := rep.Level("C1")
	ps := c1.ArrayPatterns("A")
	if len(ps) != len(c1.Patterns) {
		t.Errorf("ArrayPatterns(A) = %d, want all %d", len(ps), len(c1.Patterns))
	}
	if got := c1.ArrayPatterns("nope"); len(got) != 0 {
		t.Errorf("ArrayPatterns(nope) = %d, want 0", len(got))
	}
}

func TestBuildErrors(t *testing.T) {
	p, _, _ := timeLoopProgram()
	info, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	hier := smallHier()
	col := reusedist.NewCollector(nil, 0, false) // empty collector
	if _, err := Build(info, col, nil, hier, FullyAssoc); err == nil {
		t.Error("Build with missing level data should fail")
	}
}

func TestPerScopeMissRate(t *testing.T) {
	p, _, inner := timeLoopProgram()
	rep, _ := analyze(t, p, smallHier(), FullyAssoc)
	c1 := rep.Level("C1")
	// 10 passes x 512 elements, all at the inner loop; every 8th access
	// opens a new 64-byte line and misses in tiny C1.
	if got := c1.AccessesByScope[inner.Scope()]; got != 5120 {
		t.Errorf("accesses at inner scope = %v, want 5120", got)
	}
	if got := c1.MissRate(inner.Scope()); got != 0.125 {
		t.Errorf("miss rate at inner scope = %v, want 0.125", got)
	}
	// Scopes without accesses report rate 0.
	if got := c1.MissRate(0); got != 0 {
		t.Errorf("root miss rate = %v, want 0", got)
	}
	if got := c1.MissRate(-1); got != 0 {
		t.Errorf("invalid scope miss rate = %v, want 0", got)
	}
	// C2 (fits the working set): rate is cold-only, well below 1.
	c2 := rep.Level("C2")
	if r := c2.MissRate(inner.Scope()); r <= 0 || r >= 0.5 {
		t.Errorf("C2 miss rate = %v, want small positive", r)
	}
}

func TestThreeCClassification(t *testing.T) {
	// A cyclic scan over a working set just above capacity: with the
	// FullyAssoc model every non-cold miss is a capacity miss and
	// conflict misses are zero by construction.
	p, _, _ := timeLoopProgram()
	rep, _ := analyze(t, p, smallHier(), FullyAssoc)
	c1 := rep.Level("C1")
	if c1.ConflictMisses != 0 {
		t.Errorf("FullyAssoc conflict misses = %v, want 0", c1.ConflictMisses)
	}
	if want := c1.TotalMisses - c1.ColdMisses; c1.CapacityMisses != want {
		t.Errorf("capacity = %v, want %v", c1.CapacityMisses, want)
	}
	// A direct-mapped cache with two ping-ponging blocks: almost all
	// misses are conflict misses (the working set is 2 blocks; capacity
	// is 4).
	prog := ir.NewProgram("pingpong")
	a := p2Array(prog)
	i := prog.Var("i")
	main := prog.AddRoutine("main", "f", 1)
	main.Body = []ir.Stmt{
		ir.For(i, ir.C(0), ir.C(199),
			ir.Do(a.Read(ir.C(0)), a.Read(ir.C(32))), // blocks 0 and 4: same set
		),
	}
	dm := &cache.Hierarchy{Levels: []cache.Level{
		{Name: "DM", LineBits: 6, Sets: 4, Assoc: 1, Latency: 1},
	}}
	rep2, _ := analyze(t, prog, dm, SetAssoc)
	l := rep2.Level("DM")
	if l.CapacityMisses != 0 {
		t.Errorf("capacity misses = %v, want 0 (working set fits)", l.CapacityMisses)
	}
	// The binomial model assumes uniform set placement, so it expects
	// P=1/4 of the ~400 distance-1 reuses to collide (~100); what matters
	// here is that every predicted non-cold miss is classified as
	// conflict, none as capacity.
	if l.ConflictMisses < 90 {
		t.Errorf("conflict misses = %v, want ~100 (binomial ping-pong estimate)", l.ConflictMisses)
	}
	if math.Abs(l.TotalMisses-(l.ColdMisses+l.CapacityMisses+l.ConflictMisses)) > 1e-9 {
		t.Errorf("3C components do not sum: %v vs %v+%v+%v",
			l.TotalMisses, l.ColdMisses, l.CapacityMisses, l.ConflictMisses)
	}
}

func p2Array(p *ir.Program) *ir.Array { return p.AddArray("A", 8, ir.C(64)) }
