package workloads

import (
	"testing"

	"reusetool/internal/cache"
	"reusetool/internal/cachesim"
	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/scope"
	"reusetool/internal/trace"
)

func simulate(t *testing.T, p *ir.Program, init func(*interp.Machine) error) *cachesim.Sim {
	t.Helper()
	info := MustFinalize(p)
	sim := cachesim.New(cache.ScaledItanium2())
	var opts []interp.Option
	if init != nil {
		opts = append(opts, interp.WithInit(init))
	}
	if _, err := interp.Run(info, nil, sim, opts...); err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestStreamAccessCount(t *testing.T) {
	p := Stream(1000, 3)
	info := MustFinalize(p)
	var c trace.Counter
	if _, err := interp.Run(info, nil, &c); err != nil {
		t.Fatal(err)
	}
	if c.Accesses != 3000 {
		t.Errorf("accesses = %d, want 3000", c.Accesses)
	}
}

func TestStencilBoundarySafety(t *testing.T) {
	// The 5-point stencil stays in bounds for the smallest sensible size.
	p := Stencil(3, 2)
	info := MustFinalize(p)
	if _, err := interp.Run(info, nil, trace.Discard{}); err != nil {
		t.Fatalf("stencil(3) out of bounds: %v", err)
	}
}

func TestTransposeMissAsymmetry(t *testing.T) {
	sim := simulate(t, Transpose(256), nil)
	byRef := sim.MissesByRef("L2")
	// Ref 0 reads A (unit stride), ref 1 writes B (column stride): the
	// write side must miss far more.
	if len(byRef) < 2 || byRef[1] < 4*byRef[0] {
		t.Errorf("transpose misses by ref = %v; expected write-dominated", byRef)
	}
}

func TestMatMulBlockingReducesMisses(t *testing.T) {
	const n = 96 // 3 matrices x 72KB: exceeds the scaled L2 (16KB)
	plain := simulate(t, MatMul(n, 0), nil)
	blocked := simulate(t, MatMul(n, 16), nil)
	// Same work...
	if plain.Accesses != blocked.Accesses {
		t.Fatalf("access counts differ: %d vs %d", plain.Accesses, blocked.Accesses)
	}
	// ...far fewer L2 misses.
	p, b := plain.Misses("L2"), blocked.Misses("L2")
	if b*2 > p {
		t.Errorf("blocking should cut L2 misses at least 2x: %d -> %d", p, b)
	}
}

func TestGatherOrderingMatters(t *testing.T) {
	const n = 1 << 14 // 128KB array: exceeds the scaled L3
	mk := func(order string) *cachesim.Sim {
		prog, fill := Gather(n, 2, order, 42)
		return simulate(t, prog, func(m *interp.Machine) error { return fill(m) })
	}
	sorted := mk("sorted")
	random := mk("random")
	strided := mk("strided")
	// Table I row 2: reordering the data (random -> sorted) removes the
	// irregular misses.
	if random.Misses("L2") < 4*sorted.Misses("L2") {
		t.Errorf("random gather should miss >= 4x more than sorted: %d vs %d",
			random.Misses("L2"), sorted.Misses("L2"))
	}
	if strided.Misses("TLB") <= sorted.Misses("TLB") {
		t.Errorf("strided gather should thrash the TLB: %d vs %d",
			strided.Misses("TLB"), sorted.Misses("TLB"))
	}
}

func TestPseudoShuffleIsPermutation(t *testing.T) {
	perm := pseudoShuffle(1000, 7)
	seen := make([]bool, 1000)
	for _, v := range perm {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
	// Different seeds give different permutations.
	perm2 := pseudoShuffle(1000, 8)
	same := true
	for i := range perm {
		if perm[i] != perm2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical shuffles")
	}
}

func TestFindScope(t *testing.T) {
	p := Stream(100, 1)
	info := MustFinalize(p)
	if FindScope(info, scope.KindLoop, "i") == trace.NoScope {
		t.Error("loop i not found")
	}
	if FindScope(info, scope.KindLoop, "zz") != trace.NoScope {
		t.Error("absent scope should be NoScope")
	}
}

func TestMustFinalizePanicsOnBadProgram(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFinalize should panic on an empty program")
		}
	}()
	MustFinalize(ir.NewProgram("empty"))
}
