package workloads

import (
	"testing"

	"reusetool/internal/cache"
	"reusetool/internal/cachesim"
	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/reusedist"
)

// TestTimeSkewingRemovesTimeLoopCarriedMisses demonstrates the positive
// case of Table I's last row: time skewing converts reuse carried by the
// time-step loop into tile-local reuse.
func TestTimeSkewingRemovesTimeLoopCarriedMisses(t *testing.T) {
	const (
		n     = 1 << 14 // 128KB per array: exceeds the scaled L3
		steps = 6
		tile  = 512 // 4KB tiles: comfortably cached
	)
	hier := cache.ScaledItanium2()

	plainInfo := MustFinalize(Stencil1D(n, steps))
	plainSim := cachesim.New(hier)
	plainRes, err := interp.Run(plainInfo, nil, plainSim)
	if err != nil {
		t.Fatal(err)
	}

	skewInfo := MustFinalize(Stencil1DSkewed(n, steps, tile))
	skewSim := cachesim.New(hier)
	skewRes, err := interp.Run(skewInfo, nil, skewSim)
	if err != nil {
		t.Fatal(err)
	}

	// Comparable total work (the skew only adds boundary clipping).
	ratio := float64(skewRes.Accesses) / float64(plainRes.Accesses)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("access counts too different to compare: %d vs %d", skewRes.Accesses, plainRes.Accesses)
	}

	plainRate := plainSim.MissRate("L2")
	skewRate := skewSim.MissRate("L2")
	if skewRate*3 > plainRate {
		t.Errorf("skewing should cut the L2 miss rate at least 3x: %.4f -> %.4f", plainRate, skewRate)
	}
}

// carriedMissesByLoopName runs a program through a reuse-distance engine
// and sums exact misses (at the given capacity in blocks) by the name of
// the carrying loop.
func carriedMissesByLoopName(t *testing.T, prog *ir.Program, capacity uint64) map[string]uint64 {
	t.Helper()
	info := MustFinalize(prog)
	eng := reusedist.New(reusedist.Config{BlockBits: 7, Thresholds: []uint64{capacity}})
	if _, err := interp.Run(info, nil, eng); err != nil {
		t.Fatal(err)
	}
	out := map[string]uint64{}
	for _, rd := range eng.Refs() {
		for _, p := range rd.Patterns {
			if !info.Scopes.Valid(p.Key.Carrying) {
				continue
			}
			out[info.Scopes.Node(p.Key.Carrying).Name] += p.MissAt[0]
		}
	}
	return out
}

// TestTimeSkewingShiftsCarryingScope verifies via the reuse-distance
// engine that the capacity misses carried by the time loop collapse
// under skewing.
func TestTimeSkewingShiftsCarryingScope(t *testing.T) {
	const (
		n     = 4096
		steps = 4
		tile  = 256
	)
	plain := carriedMissesByLoopName(t, Stencil1D(n, steps), 128)
	skew := carriedMissesByLoopName(t, Stencil1DSkewed(n, steps, tile), 128)

	if plain["t"] == 0 {
		t.Fatal("plain stencil should have t-carried misses")
	}
	if skew["t"]*4 > plain["t"] {
		t.Errorf("skewing should slash t-carried misses: %d -> %d", plain["t"], skew["t"])
	}
}
