package workloads

import (
	"testing"

	"reusetool/internal/cache"
	"reusetool/internal/cachesim"
	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/scope"
	"reusetool/internal/trace"
)

func gtcCfg() GTCConfig {
	return GTCConfig{Grid: 256, Micell: 4, TimeSteps: 1, Seed: 7}
}

func runGTC(t *testing.T, cfg GTCConfig, h trace.Handler) (*ir.Info, *interp.Result) {
	t.Helper()
	p, init, err := GTC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info := MustFinalize(p)
	res, err := interp.Run(info, nil, h, interp.WithInit(init))
	if err != nil {
		t.Fatal(err)
	}
	return info, res
}

// TestGTCVariantsPerformSameWork: every cumulative variant executes the
// same number of memory references — the transformations only reorder
// work and relayout data.
func TestGTCVariantsPerformSameWork(t *testing.T) {
	var base uint64
	for i, v := range GTCVariants(gtcCfg()) {
		var c trace.Counter
		info, _ := runGTC(t, v.Config, &c)
		if c.Enters != c.Exits {
			t.Fatalf("%s: unbalanced scope events", v.Label)
		}
		if i == 0 {
			base = c.Accesses
			if base == 0 {
				t.Fatal("no accesses")
			}
			continue
		}
		if c.Accesses != base {
			t.Errorf("%s: %d accesses, want %d", v.Label, c.Accesses, base)
		}
		_ = info
	}
}

func TestGTCScopeStructure(t *testing.T) {
	info, _ := runGTC(t, gtcCfg(), trace.Discard{})
	for _, name := range []string{"chargei", "poisson", "smooth", "pushi", "gcmotion", "spcpft", "main"} {
		if FindScope(info, scope.KindRoutine, name) == trace.NoScope {
			t.Errorf("missing routine %q", name)
		}
	}
	// Both the time-step loop and the RK loop are marked.
	tstep := FindScope(info, scope.KindLoop, "tstep")
	irk := FindScope(info, scope.KindLoop, "irk")
	if !info.Scopes.Node(tstep).TimeStep || !info.Scopes.Node(irk).TimeStep {
		t.Error("time-step loops not marked")
	}
	// gcmotion lives in a separate file ("different language").
	gc := FindScope(info, scope.KindRoutine, "gcmotion")
	if info.Scopes.Node(info.Scopes.Parent(gc)).Name != "gcmotion.c" {
		t.Errorf("gcmotion file = %q", info.Scopes.Node(info.Scopes.Parent(gc)).Name)
	}
}

func TestGTCZionLayouts(t *testing.T) {
	// AoS: one zion array with 7-field records.
	pa, _, err := GTC(gtcCfg())
	if err != nil {
		t.Fatal(err)
	}
	var aos *ir.Array
	for _, a := range pa.Arrays {
		if a.Name == "zion" {
			aos = a
		}
	}
	if aos == nil || aos.Rank() != 2 {
		t.Fatal("AoS zion missing or wrong rank")
	}
	// SoA: seven per-field vectors.
	cfg := gtcCfg()
	cfg.ZionSoA = true
	ps, _, err := GTC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fieldCount int
	for _, a := range ps.Arrays {
		if len(a.Name) == 5 && a.Name[:4] == "zion" {
			fieldCount++
		}
	}
	if fieldCount != 7 {
		t.Errorf("SoA zion fields = %d, want 7", fieldCount)
	}
}

// TestGTCSmoothLIRemovesTLBMisses: the interchanged smooth loop must
// slash TLB misses, the paper's Figure 10(b) outcome.
func TestGTCSmoothLIRemovesTLBMisses(t *testing.T) {
	hier := cache.ScaledItanium2()

	// The smooth array must exceed the scaled TLB reach (32 x 4KB pages),
	// which needs the full-size grid.
	cfgA := gtcCfg()
	cfgA.Grid = 2048
	cfgA.Micell = 1
	simA := cachesim.New(hier)
	infoA, _ := runGTC(t, cfgA, simA)

	cfgB := cfgA
	cfgB.SmoothLI = true
	simB := cachesim.New(hier)
	infoB, _ := runGTC(t, cfgB, simB)

	// Compare TLB misses attributed to the smooth routine subtree.
	tlbA := scopeSubtreeMisses(infoA, simA.MissesByScope("TLB"), "smooth")
	tlbB := scopeSubtreeMisses(infoB, simB.MissesByScope("TLB"), "smooth")
	if tlbA == 0 {
		t.Fatal("original smooth has no TLB misses; model broken")
	}
	if tlbB*4 > tlbA {
		t.Errorf("smooth LI: TLB misses %d -> %d; expected at least 4x reduction", tlbA, tlbB)
	}
}

// scopeSubtreeMisses sums per-scope misses over the subtree rooted at the
// named routine.
func scopeSubtreeMisses(info *ir.Info, byScope []uint64, routine string) uint64 {
	root := FindScope(info, scope.KindRoutine, routine)
	var sum uint64
	info.Scopes.PreOrder(func(id trace.ScopeID) {
		if info.Scopes.IsAncestor(root, id) && int(id) < len(byScope) {
			sum += byScope[id]
		}
	})
	return sum
}

// TestGTCZionTransposeReducesMisses: the SoA transpose must cut L3-level
// misses on the particle arrays (Figure 11's dominant effect).
func TestGTCZionTransposeReducesMisses(t *testing.T) {
	hier := cache.ScaledItanium2()
	cfgA := gtcCfg()
	cfgA.Micell = 8 // enough particles that zion exceeds the scaled L3
	simA := cachesim.New(hier)
	runGTC(t, cfgA, simA)

	cfgB := cfgA
	cfgB.ZionSoA = true
	simB := cachesim.New(hier)
	runGTC(t, cfgB, simB)

	a, b := simA.Misses("L3"), simB.Misses("L3")
	if b >= a {
		t.Errorf("zion transpose did not reduce L3 misses: %d -> %d", a, b)
	}
	// The paper reports roughly halved cache misses from the transpose
	// plus the other transformations; the transpose alone should cut at
	// least 20%.
	if float64(b) > 0.8*float64(a) {
		t.Errorf("zion transpose reduction too small: %d -> %d", a, b)
	}
}

// TestGTCPushiTilingReducesMisses: strip-mine+fuse shortens the
// pushi/gcmotion reuse distances.
func TestGTCPushiTilingReducesMisses(t *testing.T) {
	hier := cache.ScaledItanium2()
	cfgA := gtcCfg()
	cfgA.Micell = 8
	simA := cachesim.New(hier)
	infoA, _ := runGTC(t, cfgA, simA)

	cfgB := cfgA
	cfgB.PushiTiled = true
	simB := cachesim.New(hier)
	infoB, _ := runGTC(t, cfgB, simB)

	a := scopeSubtreeMisses(infoA, simA.MissesByScope("L3"), "pushi") +
		scopeSubtreeMisses(infoA, simA.MissesByScope("L3"), "gcmotion")
	b := scopeSubtreeMisses(infoB, simB.MissesByScope("L3"), "pushi") +
		scopeSubtreeMisses(infoB, simB.MissesByScope("L3"), "gcmotion")
	if b >= a {
		t.Errorf("pushi tiling did not reduce pushi+gcmotion L3 misses: %d -> %d", a, b)
	}
}

func TestGTCChargeiFusionReducesMisses(t *testing.T) {
	hier := cache.ScaledItanium2()
	cfgA := gtcCfg()
	cfgA.Micell = 8
	simA := cachesim.New(hier)
	infoA, _ := runGTC(t, cfgA, simA)

	cfgB := cfgA
	cfgB.ChargeiFused = true
	simB := cachesim.New(hier)
	infoB, _ := runGTC(t, cfgB, simB)

	a := scopeSubtreeMisses(infoA, simA.MissesByScope("L3"), "chargei")
	b := scopeSubtreeMisses(infoB, simB.MissesByScope("L3"), "chargei")
	if b >= a {
		t.Errorf("chargei fusion did not reduce chargei L3 misses: %d -> %d", a, b)
	}
}

func TestGTCInvalidConfig(t *testing.T) {
	bad := []GTCConfig{
		{Grid: 10, Micell: 1, TimeSteps: 1},
		{Grid: 256, Micell: 0, TimeSteps: 1},
		{Grid: 256, Micell: 1, TimeSteps: 0},
	}
	for _, cfg := range bad {
		if _, _, err := GTC(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestGTCVariantSequence(t *testing.T) {
	vs := GTCVariants(gtcCfg())
	if len(vs) != 7 {
		t.Fatalf("variants = %d, want 7", len(vs))
	}
	if vs[0].Label != "gtc_original" || vs[6].Label != "+pushi tiling/fusion" {
		t.Errorf("labels wrong: %s ... %s", vs[0].Label, vs[6].Label)
	}
	// Cumulative flags.
	if !vs[6].Config.ZionSoA || !vs[6].Config.SmoothLI || !vs[6].Config.PushiTiled {
		t.Error("final variant should have all transformations")
	}
	if vs[1].Config.ChargeiFused {
		t.Error("second variant should only have the transpose")
	}
}
