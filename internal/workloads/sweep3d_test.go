package workloads

import (
	"testing"

	"reusetool/internal/interp"
	"reusetool/internal/ir"
	"reusetool/internal/scope"
	"reusetool/internal/trace"
)

func runCounted(t *testing.T, p *ir.Program) (*ir.Info, *trace.Counter, *interp.Result) {
	t.Helper()
	info := MustFinalize(p)
	var c trace.Counter
	res, err := interp.Run(info, nil, &c)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	if c.Enters != c.Exits {
		t.Fatalf("%s: unbalanced scopes: %d enters, %d exits", p.Name, c.Enters, c.Exits)
	}
	return info, &c, res
}

func sweepCfg(n, block int64, dimIC bool) Sweep3DConfig {
	return Sweep3DConfig{N: n, Angles: 6, Moments: 4, Octants: 2, TimeSteps: 1,
		Block: block, DimInterchange: dimIC}
}

// cellVisits runs a variant and counts per-(j,k,mi) cell visits using the
// src read at line 384 (one per cell per octant, per i iteration).
func sweepAccesses(t *testing.T, cfg Sweep3DConfig) uint64 {
	t.Helper()
	p, err := Sweep3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := runCounted(t, p)
	return c.Accesses
}

// TestSweep3DVariantsVisitSameCells: every variant performs exactly the
// same number of memory accesses — tiling only reorders the iteration
// space.
func TestSweep3DVariantsPerformSameWork(t *testing.T) {
	base := sweepAccesses(t, sweepCfg(6, 0, false))
	if base == 0 {
		t.Fatal("no accesses")
	}
	for _, block := range []int64{1, 2, 3, 6} {
		got := sweepAccesses(t, sweepCfg(6, block, false))
		if got != base {
			t.Errorf("block %d: %d accesses, want %d", block, got, base)
		}
	}
	if got := sweepAccesses(t, sweepCfg(6, 6, true)); got != base {
		t.Errorf("dimIC: %d accesses, want %d", got, base)
	}
}

// TestSweep3DCellCoverage: the original wavefront visits every (j,k,mi)
// cell exactly once per octant.
func TestSweep3DCellCoverage(t *testing.T) {
	cfg := sweepCfg(5, 0, false)
	cfg.Octants = 1
	p, err := Sweep3D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info := MustFinalize(p)
	// Count accesses of the line-384 src read (first ref of the cell
	// work): it executes it times per cell visit.
	var rec trace.Recorder
	if _, err := interp.Run(info, nil, &rec); err != nil {
		t.Fatal(err)
	}
	// Identify the phi write at 384 (ref 0 is phi write, ref 1 is the src
	// read — count ref 1).
	var srcReads uint64
	for _, e := range rec.Events {
		if e.Kind == trace.EvAccess && e.Ref == 1 {
			srcReads++
		}
	}
	wantCells := uint64(5 * 5 * 6) // jt*kt*mmi
	if srcReads != wantCells*5 {   // * it iterations
		t.Errorf("src@384 reads = %d, want %d (every cell once)", srcReads, wantCells*5)
	}
}

func TestSweep3DScopeStructure(t *testing.T) {
	p, err := Sweep3D(sweepCfg(5, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	info := MustFinalize(p)
	for _, name := range []string{"tstep", "iq", "idiag", "mi", "k", "i", "n"} {
		if FindScope(info, scope.KindLoop, name) == trace.NoScope {
			t.Errorf("missing loop scope %q", name)
		}
	}
	ts := FindScope(info, scope.KindLoop, "tstep")
	if !info.Scopes.Node(ts).TimeStep {
		t.Error("tstep not marked as time-step loop")
	}
	// idiag is inside iq.
	idiag := FindScope(info, scope.KindLoop, "idiag")
	iq := FindScope(info, scope.KindLoop, "iq")
	if !info.Scopes.IsAncestor(iq, idiag) {
		t.Error("iq should enclose idiag")
	}
}

func TestSweep3DBlockedScopeStructure(t *testing.T) {
	p, err := Sweep3D(sweepCfg(5, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	info := MustFinalize(p)
	mib := FindScope(info, scope.KindLoop, "mib")
	idiag := FindScope(info, scope.KindLoop, "idiag")
	mi := FindScope(info, scope.KindLoop, "mi")
	if mib == trace.NoScope {
		t.Fatal("missing mib loop")
	}
	if !info.Scopes.IsAncestor(mib, idiag) {
		t.Error("mib should enclose idiag in the tiled variant")
	}
	if !info.Scopes.IsAncestor(idiag, mi) {
		t.Error("idiag should enclose mi in the tiled variant")
	}
}

func TestSweep3DDimInterchangeChangesLayout(t *testing.T) {
	pa, err := Sweep3D(sweepCfg(5, 6, false))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Sweep3D(sweepCfg(5, 6, true))
	if err != nil {
		t.Fatal(err)
	}
	infoA, infoB := MustFinalize(pa), MustFinalize(pb)
	ma, _ := interp.Layout(infoA, nil)
	mb, _ := interp.Layout(infoB, nil)
	var srcA, srcB *ir.Array
	for _, a := range infoA.Prog.Arrays {
		if a.Name == "src" {
			srcA = a
		}
	}
	for _, a := range infoB.Prog.Arrays {
		if a.Name == "src" {
			srcB = a
		}
	}
	// Original: dim 1 is j (stride it*8). Interchanged: dim 1 is n.
	if ma.ArrayStride(srcA, 1) != 5*8 {
		t.Errorf("original src dim1 stride = %d, want 40", ma.ArrayStride(srcA, 1))
	}
	if mb.ArrayStride(srcB, 1) != 5*8 {
		t.Errorf("interchanged src dim1 stride = %d, want 40", mb.ArrayStride(srcB, 1))
	}
	// Total sizes match (same element count either way).
	if la, lb := ma.ArrayLen(srcA), mb.ArrayLen(srcB); la != lb {
		t.Errorf("src sizes differ: %d vs %d", la, lb)
	}
}

func TestSweep3DVariantNames(t *testing.T) {
	cases := map[string]Sweep3DConfig{
		"Original":     sweepCfg(8, 0, false),
		"Block size 2": sweepCfg(8, 2, false),
		"Blk6+dimIC":   sweepCfg(8, 6, true),
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
	vs := Sweep3DVariants(8)
	if len(vs) != 6 {
		t.Fatalf("variants = %d, want 6", len(vs))
	}
	if vs[0].Name() != "Original" || vs[5].Name() != "Blk6+dimIC" {
		t.Errorf("variant order wrong: %s ... %s", vs[0].Name(), vs[5].Name())
	}
}

func TestSweep3DInvalidConfigs(t *testing.T) {
	bad := []Sweep3DConfig{
		{N: 1, Angles: 6, Moments: 4, Octants: 8, TimeSteps: 1},
		{N: 8, Angles: 6, Moments: 4, Octants: 8, TimeSteps: 1, Block: 7},
		{N: 8, Angles: 6, Moments: 4, Octants: 8, TimeSteps: 1, Block: -1},
		{N: 8, Angles: 0, Moments: 4, Octants: 8, TimeSteps: 1},
	}
	for _, cfg := range bad {
		if _, err := Sweep3D(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}
