package workloads

import "reusetool/internal/ir"

// Stencil1D builds the plain form of a 1D three-point stencil over n
// points for the given number of time steps: an update sweep into B
// followed by a copy-back sweep into A, repeated per step. All reuse
// between steps is carried by the time loop — Table I's last row, where
// the recommended (and only) transformation is time skewing.
func Stencil1D(n, steps int64) *ir.Program {
	p := ir.NewProgram("stencil1d")
	np := p.Param("N", n)
	tp := p.Param("T", steps)
	a := p.AddArray("A", 8, np)
	b := p.AddArray("B", 8, np)
	tv, i := p.Var("t"), p.Var("i")
	main := p.AddRoutine("main", "stencil1d.f", 1)
	end := ir.Sub(np, ir.C(2))
	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.Sub(tp, ir.C(1)),
			ir.For(i, ir.C(1), end,
				ir.Do(a.Read(ir.Sub(i, ir.C(1))), a.Read(i), a.Read(ir.Add(i, ir.C(1))),
					b.WriteRef(i))).At(3),
			ir.For(i, ir.C(1), end,
				ir.Do(b.Read(i), a.WriteRef(i))).At(5),
		).AsTimeStep().At(2),
	}
	return p
}

// Stencil1DSkewed builds the time-skewed form: space-time parallelogram
// tiles of width tile are processed one at a time, so a tile's working
// set stays cached across all time steps before the sweep moves on. The
// program models the memory access pattern of a legally skewed code (the
// IR does not compute stencil values, so tile-boundary redundancy is not
// represented).
func Stencil1DSkewed(n, steps, tile int64) *ir.Program {
	p := ir.NewProgram("stencil1d-skewed")
	np := p.Param("N", n)
	tp := p.Param("T", steps)
	a := p.AddArray("A", 8, np)
	b := p.AddArray("B", 8, np)
	tv, i := p.Var("t"), p.Var("i")
	i0 := p.Var("i0")
	lo, hi := p.Var("lo"), p.Var("hi")
	main := p.AddRoutine("main", "stencil1d.f", 1)
	end := ir.Sub(np, ir.C(2))

	// Tiles start at 1, 1+tile, ...; within a tile the i range slides
	// left by one per time step (the classic skew), clipped to [1, N-2].
	main.Body = []ir.Stmt{
		ir.ForStep(i0, ir.C(1), ir.Add(end, ir.Sub(tp, ir.C(1))), ir.C(tile),
			ir.For(tv, ir.C(0), ir.Sub(tp, ir.C(1)),
				ir.Set(lo, ir.Max(ir.C(1), ir.Sub(i0, tv))),
				ir.Set(hi, ir.Min(end, ir.Sub(ir.Add(i0, ir.C(tile-1)), tv))),
				ir.For(i, lo, hi,
					ir.Do(a.Read(ir.Sub(i, ir.C(1))), a.Read(i), a.Read(ir.Add(i, ir.C(1))),
						b.WriteRef(i))).At(4),
				ir.For(i, lo, hi,
					ir.Do(b.Read(i), a.WriteRef(i))).At(6),
			).AsTimeStep().At(3),
		).At(2),
	}
	return p
}
