package workloads

import (
	"fmt"
	"math/rand"

	"reusetool/internal/interp"
	"reusetool/internal/ir"
)

// GTCConfig parameterizes the Gyrokinetic Toroidal Code kernel model.
//
// The model follows the paper's Section V-B description of the PIC
// algorithm on one poloidal plane: deposit charge from particles onto the
// grid (chargei), solve and smooth the potential (poisson, smooth, with a
// prime-factor transform spcpft), and push particles (pushi plus the "C"
// routine gcmotion), all inside a time-step loop running a two-phase
// Runge-Kutta predictor-corrector. Particle state lives in the
// seven-field zion array (plus its zion0 shadow), stored as an array of
// records unless ZionSoA transposes it — the paper's headline
// fragmentation problem.
type GTCConfig struct {
	// Grid is the number of grid points on the poloidal plane.
	Grid int64
	// Micell is the number of particles per cell; Grid*Micell particles.
	Micell int64
	// TimeSteps is the number of outer time steps (each runs two
	// Runge-Kutta phases).
	TimeSteps int64
	// Seed drives the particle-to-grid assignment.
	Seed int64

	// The paper's cumulative transformations, in Figure 11 order.
	ZionSoA       bool // transpose zion/zion0 from AoS to SoA
	ChargeiFused  bool // fuse chargei's two particle loops
	SpcpftUJ      bool // unroll&jam in spcpft (ILP only; see NonStall)
	PoissonLinear bool // linearize the ring/indexp arrays
	SmoothLI      bool // interchange the smooth loop nest
	PushiTiled    bool // strip-mine+fuse pushi's loops and gcmotion
}

// DefaultGTC returns the scaled-down default configuration (paper: one
// poloidal plane with 64 radial grid points, 15 particles per cell).
func DefaultGTC() GTCConfig {
	return GTCConfig{Grid: 2048, Micell: 15, TimeSteps: 1, Seed: 20080420}
}

// mr is the ring/indexp inner extent (gyro-averaging points per grid
// point); nindex(g) in [mrMin, mr] of them are used.
const (
	mr     = 9
	mrMin  = 3
	stripe = 64 // pushi tiling stripe
)

// GTC builds the kernel model and returns the program plus the init
// function that fills the index (data) arrays; pass it to interp.Run via
// interp.WithInit.
func GTC(cfg GTCConfig) (*ir.Program, func(*interp.Machine) error, error) {
	if cfg.Grid < 64 || cfg.Micell < 1 || cfg.TimeSteps < 1 {
		return nil, nil, fmt.Errorf("gtc: invalid config %+v", cfg)
	}

	p := ir.NewProgram("gtc-" + cfg.ShortName())
	g := p.Param("grid", cfg.Grid)
	micell := p.Param("micell", cfg.Micell)
	// mi (the particle count) is derived, not a third parameter:
	// overriding grid or micell scales the particle arrays with it.
	mi := ir.Mul(g, micell)
	ts := p.Param("ts", cfg.TimeSteps)

	// Particle arrays: zion has 7 fields per particle.
	type zstore struct {
		aos    *ir.Array
		fields []*ir.Array
	}
	mkZion := func(name string) zstore {
		if cfg.ZionSoA {
			z := zstore{}
			for f := 0; f < 7; f++ {
				z.fields = append(z.fields, p.AddArray(fmt.Sprintf("%s%d", name, f+1), 8, mi))
			}
			return z
		}
		return zstore{aos: p.AddArray(name, 8, ir.C(7), mi)}
	}
	zion := mkZion("zion")
	zion0 := mkZion("zion0")
	zR := func(z zstore, f int64, pe ir.Expr) *ir.Ref {
		if z.aos != nil {
			return z.aos.Read(ir.C(f), pe)
		}
		return z.fields[f].Read(pe)
	}
	zW := func(z zstore, f int64, pe ir.Expr) *ir.Ref {
		r := zR(z, f, pe)
		r.Write = true
		return r
	}

	igrid := p.AddDataArray("igrid", 8, mi)
	wz := p.AddArray("wz", 8, mi)
	wp := p.AddArray("wp", 8, mi)
	vdr := p.AddArray("vdr", 8, mi)

	rho := p.AddArray("rho", 8, g)
	phi := p.AddArray("phi", 8, g)
	ev := p.AddArray("evector", 8, ir.C(3), g)

	nindexA := p.AddDataArray("nindex", 8, g)
	var ring, indexp, ring1, indexp1 *ir.Array
	var poff *ir.Array
	if cfg.PoissonLinear {
		// Packed layouts: one entry per used (m, g) pair.
		packedLen := ir.Mul(g, ir.C(mr)) // upper bound; exact fill at init
		ring1 = p.AddArray("ring", 8, packedLen)
		indexp1 = p.AddDataArray("indexp", 8, packedLen)
		poff = p.AddDataArray("poff", 8, g)
	} else {
		ring = p.AddArray("ring", 8, ir.C(mr), g)
		indexp = p.AddDataArray("indexp", 8, ir.C(mr), g)
	}

	// smooth's 3D array, shaped (64, 8, Grid/64+1): the first dimension is
	// the innermost in memory, so the original loop order (outer loop
	// over the inner dimension, innermost loop striding d1*d2 elements =
	// one 4KB page) walks a page per access, cycling one page more than
	// the scaled TLB holds — the classic LRU thrash the paper's loop
	// interchange removes.
	d1 := p.Param("d1", 64)
	d2 := p.Param("d2", 8)
	d3e := ir.Add(ir.Div(g, ir.C(64)), ir.C(1))
	phism := p.AddArray("phismu", 8, d1, d2, d3e)

	// Variables.
	tv, irk := p.Var("tstep"), p.Var("irk")
	pv := p.Var("p")
	gv, mv := p.Var("gp"), p.Var("m")
	i1, i2, i3 := p.Var("i1"), p.Var("i2"), p.Var("i3")
	it2 := p.Var("iter")
	sv := p.Var("s")
	sLo, sHi := p.Var("sLo"), p.Var("sHi")

	miEnd := ir.Sub(mi, ir.C(1))
	gEnd := ir.Sub(g, ir.C(1))
	gload := func(pe ir.Expr) ir.Expr { return &ir.Load{Array: igrid, Index: []ir.Expr{pe}} }

	// ---- chargei ----
	chargei := p.AddRoutine("chargei", "chargei.F90", 100)
	depositRefs := func(pe ir.Expr) []*ir.Ref {
		refs := []*ir.Ref{wz.Read(pe), wp.Read(pe), igrid.Read(pe)}
		for d := int64(0); d < 4; d++ {
			loc := ir.Add(gload(pe), ir.C(d))
			refs = append(refs, rho.Read(loc), func() *ir.Ref {
				r := rho.Read(ir.Add(gload(pe), ir.C(d)))
				r.Write = true
				return r
			}())
		}
		return refs
	}
	gatherRefs := func(pe ir.Expr) []*ir.Ref {
		return []*ir.Ref{
			zR(zion, 0, pe), zR(zion, 1, pe), zR(zion, 4, pe),
			igrid.Read(pe),
			wz.WriteRef(pe), wp.WriteRef(pe),
		}
	}
	if cfg.ChargeiFused {
		chargei.Body = []ir.Stmt{
			ir.For(pv, ir.C(0), miEnd,
				ir.Do(gatherRefs(pv)...),
				ir.Do(depositRefs(pv)...),
			).At(110),
		}
	} else {
		chargei.Body = []ir.Stmt{
			ir.For(pv, ir.C(0), miEnd, ir.Do(gatherRefs(pv)...)).At(110),
			ir.For(pv, ir.C(0), miEnd, ir.Do(depositRefs(pv)...)).At(150),
		}
	}

	// ---- poisson ----
	poisson := p.AddRoutine("poisson", "poisson.f90", 70)
	var poissonInner ir.Stmt
	if cfg.PoissonLinear {
		off := func() ir.Expr { return ir.Add(&ir.Load{Array: poff, Index: []ir.Expr{gv}}, mv) }
		poissonInner = ir.For(mv, ir.C(0),
			ir.Sub(&ir.Load{Array: nindexA, Index: []ir.Expr{gv}}, ir.C(1)),
			ir.Do(
				indexp1.Read(off()),
				ring1.Read(off()),
				phi.Read(&ir.Load{Array: indexp1, Index: []ir.Expr{off()}}),
			),
		).At(95)
	} else {
		poissonInner = ir.For(mv, ir.C(0),
			ir.Sub(&ir.Load{Array: nindexA, Index: []ir.Expr{gv}}, ir.C(1)),
			ir.Do(
				indexp.Read(mv, gv),
				ring.Read(mv, gv),
				phi.Read(&ir.Load{Array: indexp, Index: []ir.Expr{mv, gv}}),
			),
		).At(95)
	}
	poisson.Body = []ir.Stmt{
		ir.For(it2, ir.C(0), ir.C(4),
			ir.For(gv, ir.C(0), gEnd,
				ir.Do(rho.Read(gv)),
				poissonInner,
				ir.Do(phi.WriteRef(gv), phi.Read(gv)),
			).At(90),
		).At(74),
	}

	// ---- spcpft (prime-factor transform with a short recurrence) ----
	spcpft := p.AddRoutine("spcpft", "spcpft.f", 20)
	spcpft.Body = []ir.Stmt{
		ir.For(gv, ir.C(1), gEnd,
			ir.Do(phi.Read(ir.Sub(gv, ir.C(1))), phi.Read(gv), phi.WriteRef(gv)),
		).At(25),
	}

	// ---- smooth ----
	smooth := p.AddRoutine("smooth", "smooth.F90", 300)
	smoothBody := ir.Do(phism.Read(i1, i2, i3), phism.WriteRef(i1, i2, i3))
	if cfg.SmoothLI {
		// Interchanged: the loop over the inner dimension is innermost.
		smooth.Body = []ir.Stmt{
			ir.For(i3, ir.C(0), ir.Sub(d3e, ir.C(1)),
				ir.For(i2, ir.C(0), ir.Sub(d2, ir.C(1)),
					ir.For(i1, ir.C(0), ir.Sub(d1, ir.C(1)), smoothBody).At(312),
				).At(311),
			).At(310),
		}
	} else {
		// Original: the outer loop walks the inner dimension; the
		// innermost loop jumps d1*d2 elements per iteration.
		smooth.Body = []ir.Stmt{
			ir.For(i1, ir.C(0), ir.Sub(d1, ir.C(1)),
				ir.For(i2, ir.C(0), ir.Sub(d2, ir.C(1)),
					ir.For(i3, ir.C(0), ir.Sub(d3e, ir.C(1)), smoothBody).At(312),
				).At(311),
			).At(310),
		}
	}

	// ---- gcmotion ("C" routine; operates on [sLo, sHi]) ----
	gcmotion := p.AddRoutine("gcmotion", "gcmotion.c", 50)
	gcmotion.Body = []ir.Stmt{
		ir.For(pv, sLo, sHi,
			ir.Do(
				zR(zion, 0, pv), zR(zion, 1, pv), zR(zion, 2, pv), zR(zion, 3, pv),
				zR(zion, 4, pv), zR(zion, 5, pv), zR(zion, 6, pv),
				zW(zion, 2, pv), zW(zion, 3, pv), zW(zion, 4, pv), zW(zion, 5, pv),
				vdr.Read(pv),
			),
		).At(55),
	}

	// ---- pushi ----
	pushi := p.AddRoutine("pushi", "pushi.F90", 200)
	loopARefs := func(pe ir.Expr) []*ir.Ref {
		return []*ir.Ref{
			zR(zion, 0, pe), zR(zion, 1, pe), zR(zion, 2, pe), zR(zion, 3, pe),
			igrid.Read(pe),
			ev.Read(ir.C(0), gload(pe)), ev.Read(ir.C(1), gload(pe)), ev.Read(ir.C(2), gload(pe)),
			vdr.WriteRef(pe),
		}
	}
	loopBRefs := func(pe ir.Expr) []*ir.Ref {
		return []*ir.Ref{vdr.Read(pe), zR(zion, 5, pe), zW(zion, 6, pe)}
	}
	if cfg.PushiTiled {
		pushi.Body = []ir.Stmt{
			ir.ForStep(sv, ir.C(0), miEnd, ir.C(stripe),
				ir.Set(sLo, sv),
				ir.Set(sHi, ir.Min(miEnd, ir.Add(sv, ir.C(stripe-1)))),
				ir.For(pv, sLo, sHi, ir.Do(loopARefs(pv)...)).At(210),
				ir.For(pv, sLo, sHi, ir.Do(loopBRefs(pv)...)).At(230),
				ir.CallTo(gcmotion),
			).At(205),
		}
	} else {
		pushi.Body = []ir.Stmt{
			ir.For(pv, ir.C(0), miEnd, ir.Do(loopARefs(pv)...)).At(210),
			ir.For(pv, ir.C(0), miEnd, ir.Do(loopBRefs(pv)...)).At(230),
			ir.Set(sLo, ir.C(0)),
			ir.Set(sHi, miEnd),
			ir.CallTo(gcmotion),
		}
	}

	// ---- main ----
	main := p.AddRoutine("main", "main.F90", 139)
	p.Main = main
	// Predictor copy: save 4 of zion's 7 fields into zion0 (partial-field
	// walk — fragmentation on both arrays in AoS form).
	copyLoop := ir.For(pv, ir.C(0), miEnd,
		ir.Do(
			zR(zion, 0, pv), zW(zion0, 0, pv),
			zR(zion, 1, pv), zW(zion0, 1, pv),
			zR(zion, 2, pv), zW(zion0, 2, pv),
			zR(zion, 3, pv), zW(zion0, 3, pv),
		),
	).At(150)
	// Diagnostic: touch a single field of zion (1 of 7).
	diagLoop := ir.For(pv, ir.C(0), miEnd, ir.Do(zR(zion, 6, pv))).At(330)

	rkBody := []ir.Stmt{
		copyLoop,
		ir.CallTo(chargei),
		ir.CallTo(poisson),
		ir.CallTo(spcpft),
		// The field smoothing runs once per time step (predictor phase).
		ir.When(ir.Eq(irk, ir.C(0)), ir.CallTo(smooth)),
		ir.CallTo(pushi),
		diagLoop,
	}
	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.Sub(ts, ir.C(1)),
			ir.For(irk, ir.C(0), ir.C(1), rkBody...).AsTimeStep().At(146),
		).AsTimeStep().At(139),
	}

	// ---- init ----
	seed := cfg.Seed
	init := func(m *interp.Machine) error {
		rng := rand.New(rand.NewSource(seed))
		// Array extents honor parameter overrides (-param grid=...), so
		// derive the actual sizes from the arrays, not the config.
		grid := m.ArrayLen(nindexA)
		nPart := m.ArrayLen(igrid)
		for i := int64(0); i < nPart; i++ {
			m.SetData(igrid, i, rng.Int63n(grid-4))
		}
		// nindex(g) in [mrMin, mr].
		nvals := make([]int64, grid)
		for gp := int64(0); gp < grid; gp++ {
			nvals[gp] = mrMin + rng.Int63n(mr-mrMin+1)
			m.SetData(nindexA, gp, nvals[gp])
		}
		if cfg.PoissonLinear {
			var off int64
			for gp := int64(0); gp < grid; gp++ {
				m.SetData(poff, gp, off)
				for mm := int64(0); mm < nvals[gp]; mm++ {
					m.SetData(indexp1, off, (gp+mm+1)%grid)
					off++
				}
			}
		} else {
			for gp := int64(0); gp < grid; gp++ {
				for mm := int64(0); mm < mr; mm++ {
					m.SetData(indexp, gp*mr+mm, (gp+mm+1)%grid)
				}
			}
		}
		return nil
	}
	return p, init, nil
}

// ShortName renders a compact variant tag.
func (c GTCConfig) ShortName() string {
	s := "orig"
	switch {
	case c.PushiTiled:
		s = "pushi"
	case c.SmoothLI:
		s = "smooth"
	case c.PoissonLinear:
		s = "poisson"
	case c.SpcpftUJ:
		s = "spcpft"
	case c.ChargeiFused:
		s = "chargei"
	case c.ZionSoA:
		s = "zion"
	}
	return s
}

// GTCVariant couples a configuration with its Figure 11 legend label and
// the non-stall cycle scale the timing model applies (ILP-only effects).
type GTCVariant struct {
	Label  string
	Config GTCConfig
	// NonStall scales the timing model's non-stall term: <1 for ILP
	// improvements (unroll & jam), back up for the pushi tiling variant
	// whose stripe loop overflows the Itanium's 16KB instruction cache.
	NonStall float64
}

// GTCVariants returns the paper's Figure 11 cumulative transformation
// sequence for the given base configuration.
func GTCVariants(base GTCConfig) []GTCVariant {
	v := base
	out := []GTCVariant{{Label: "gtc_original", Config: v, NonStall: 1.0}}
	v.ZionSoA = true
	out = append(out, GTCVariant{Label: "+zion transpose", Config: v, NonStall: 1.0})
	v.ChargeiFused = true
	out = append(out, GTCVariant{Label: "+chargei fusion", Config: v, NonStall: 1.0})
	v.SpcpftUJ = true
	out = append(out, GTCVariant{Label: "+spcpft u&j", Config: v, NonStall: 0.92})
	v.PoissonLinear = true
	out = append(out, GTCVariant{Label: "+poisson transforms", Config: v, NonStall: 0.92})
	v.SmoothLI = true
	out = append(out, GTCVariant{Label: "+smooth LI", Config: v, NonStall: 0.92})
	v.PushiTiled = true
	out = append(out, GTCVariant{Label: "+pushi tiling/fusion", Config: v, NonStall: 1.0})
	return out
}
