package workloads

import (
	"fmt"

	"reusetool/internal/ir"
)

// Sweep3DConfig parameterizes the Sweep3D kernel model.
//
// The model reproduces the loop structure of the paper's Figure 3 and the
// access patterns of the loops in Figure 6: an octant loop (iq) around a
// wavefront sweep whose diagonal planes in (j,k,mi) space are processed
// one cell at a time, each cell running inner i/n loop nests over the
// four-dimensional arrays src and flux (plus face, sigt and the phi/
// phikb/phijb working arrays). Arrays are column-major with i innermost,
// and src/flux are indexed by (i,j,k,n) — never by mi — which is exactly
// the reuse opportunity the paper exploits.
type Sweep3DConfig struct {
	// N is the cubic mesh size (it = jt = kt = N).
	N int64
	// Angles is mmi, the number of angles per pipeline block (paper: 6).
	Angles int64
	// Moments is nm, the number of flux moments (paper's n loops).
	Moments int64
	// Octants is the number of sweep directions (paper: 8).
	Octants int64
	// TimeSteps repeats the whole sweep.
	TimeSteps int64
	// Block selects the variant. 0 reproduces the original (j,k,mi)
	// wavefront. B >= 1 is the paper's mi-tiling: the sweep becomes a
	// (j,k) wavefront with an innermost loop over a block of B angles per
	// cell; B == 1 processes one angle per full sweep (the paper notes it
	// matches the original's memory behaviour), B == Angles groups all
	// angles of a cell consecutively.
	Block int64
	// DimInterchange applies the paper's final transformation: the n
	// dimension of src and flux moves from the outermost to the second
	// position, so a cell's whole working set is contiguous.
	DimInterchange bool
}

// DefaultSweep3D returns the scaled-down default configuration (the paper
// uses meshes 20-200 on full-size caches; experiments here run 8-40 on
// the proportionally scaled hierarchy).
func DefaultSweep3D() Sweep3DConfig {
	return Sweep3DConfig{N: 16, Angles: 6, Moments: 4, Octants: 8, TimeSteps: 1}
}

// Name renders a variant label matching the paper's Figure 8 legend.
func (c Sweep3DConfig) Name() string {
	switch {
	case c.Block == 0:
		return "Original"
	case c.DimInterchange:
		return fmt.Sprintf("Blk%d+dimIC", c.Block)
	default:
		return fmt.Sprintf("Block size %d", c.Block)
	}
}

// Sweep3D builds the kernel model for one configuration.
func Sweep3D(cfg Sweep3DConfig) (*ir.Program, error) {
	if cfg.N < 2 || cfg.Angles < 1 || cfg.Moments < 1 || cfg.Octants < 1 || cfg.TimeSteps < 1 {
		return nil, fmt.Errorf("sweep3d: invalid config %+v", cfg)
	}
	if cfg.Block < 0 || cfg.Block > cfg.Angles {
		return nil, fmt.Errorf("sweep3d: block %d out of range [0,%d]", cfg.Block, cfg.Angles)
	}

	p := ir.NewProgram("sweep3d-" + cfg.Name())
	it := p.Param("it", cfg.N)
	jt := p.Param("jt", cfg.N)
	kt := p.Param("kt", cfg.N)
	mmi := p.Param("mmi", cfg.Angles)
	nm := p.Param("nm", cfg.Moments)
	oct := p.Param("oct", cfg.Octants)
	ts := p.Param("ts", cfg.TimeSteps)

	// Arrays, column-major. src/flux: (i, j, k, n) originally; the
	// dimension interchange moves n to position 2: (i, n, j, k).
	var src, flux *ir.Array
	if cfg.DimInterchange {
		src = p.AddArray("src", 8, it, nm, jt, kt)
		flux = p.AddArray("flux", 8, it, nm, jt, kt)
	} else {
		src = p.AddArray("src", 8, it, jt, kt, nm)
		flux = p.AddArray("flux", 8, it, jt, kt, nm)
	}
	face := p.AddArray("face", 8, it, jt, kt, ir.C(3))
	sigt := p.AddArray("sigt", 8, it, jt, kt)
	phi := p.AddArray("phi", 8, it)
	phikb := p.AddArray("phikb", 8, it, jt)
	phijb := p.AddArray("phijb", 8, it, kt)
	pn := p.AddArray("pn", 8, mmi, nm, oct)
	w := p.AddArray("w", 8, mmi)

	tv := p.Var("tstep")
	iq := p.Var("iq")
	mib := p.Var("mib")
	idiag := p.Var("idiag")
	miv := p.Var("mi")
	kv := p.Var("k")
	jv := p.Var("j")
	iv := p.Var("i")
	nv := p.Var("n")

	// srcIdx/fluxIdx account for the dimension order variant.
	srcIdx := func(a *ir.Array, i, j, k, n ir.Expr) *ir.Ref {
		if cfg.DimInterchange {
			return a.Read(i, n, j, k)
		}
		return a.Read(i, j, k, n)
	}
	srcW := func(a *ir.Array, i, j, k, n ir.Expr) *ir.Ref {
		r := srcIdx(a, i, j, k, n)
		r.Write = true
		return r
	}

	// cellWork returns the per-cell loop nests of Figure 6 (and the
	// sigt/phikb/phijb balance loop), for angle expression mi and cell
	// (j,k).
	cellWork := func(mi ir.Expr) []ir.Stmt {
		itEnd := ir.Sub(it, ir.C(1))
		nmEnd := ir.Sub(nm, ir.C(1))
		return []ir.Stmt{
			// 384-386: phi(i) = src(i,j,k,1)
			ir.For(iv, ir.C(0), itEnd,
				ir.Do(phi.WriteRef(iv), srcIdx(src, iv, jv, kv, ir.C(0))),
			).At(384),
			// 387-391: phi(i) += pn(m,n,iq)*src(i,j,k,n)
			ir.For(nv, ir.C(1), nmEnd,
				ir.For(iv, ir.C(0), itEnd,
					ir.Do(phi.WriteRef(iv), phi.Read(iv), pn.Read(mi, nv, iq),
						srcIdx(src, iv, jv, kv, nv)),
				).At(388),
			).At(387),
			// 397-410: balance recursion over sigt and the plane buffers.
			ir.For(iv, ir.C(0), itEnd,
				ir.Do(phi.WriteRef(iv), phi.Read(iv), sigt.Read(iv, jv, kv),
					phikb.Read(iv, jv), phikb.WriteRef(iv, jv),
					phijb.Read(iv, kv), phijb.WriteRef(iv, kv)),
			).At(397),
			// 474-476: flux(i,j,k,1) += w(m)*phi(i)
			ir.For(iv, ir.C(0), itEnd,
				ir.Do(srcW(flux, iv, jv, kv, ir.C(0)), srcIdx(flux, iv, jv, kv, ir.C(0)),
					w.Read(mi), phi.Read(iv)),
			).At(474),
			// 477-482: flux(i,j,k,n) += pn(m,n,iq)*w(m)*phi(i)
			ir.For(nv, ir.C(1), nmEnd,
				ir.For(iv, ir.C(0), itEnd,
					ir.Do(srcW(flux, iv, jv, kv, nv), srcIdx(flux, iv, jv, kv, nv),
						pn.Read(mi, nv, iq), phi.Read(iv)),
				).At(478),
			).At(477),
			// 486-493: face accumulation, one component per mesh direction.
			ir.For(iv, ir.C(0), itEnd,
				ir.Do(
					face.Read(iv, jv, kv, ir.C(0)), face.WriteRef(iv, jv, kv, ir.C(0)),
					face.Read(iv, jv, kv, ir.C(1)), face.WriteRef(iv, jv, kv, ir.C(1)),
					face.Read(iv, jv, kv, ir.C(2)), face.WriteRef(iv, jv, kv, ir.C(2)),
					phi.Read(iv)),
			).At(486),
		}
	}

	main := p.AddRoutine("sweep", "sweep.f", 2)

	jtEnd := ir.Sub(jt, ir.C(1))
	ktEnd := ir.Sub(kt, ir.C(1))

	var sweepBody ir.Stmt
	if cfg.Block == 0 {
		// Original: diagonal planes of the 3D (j,k,mi) wavefront.
		// idiag ranges over plane sums; mi and k bounds clip the plane to
		// the box, and j = idiag - mi - k is then in range by
		// construction.
		diagMax := ir.Sub(ir.Add(ir.Add(jt, kt), mmi), ir.C(3))
		sweepBody = ir.For(idiag, ir.C(0), diagMax,
			ir.For(miv,
				ir.Max(ir.C(0), ir.Sub(idiag, ir.Add(jtEnd, ktEnd))),
				ir.Min(ir.Sub(mmi, ir.C(1)), idiag),
				ir.For(kv,
					ir.Max(ir.C(0), ir.Sub(ir.Sub(idiag, miv), jtEnd)),
					ir.Min(ktEnd, ir.Sub(idiag, miv)),
					append([]ir.Stmt{ir.Set(jv, ir.Sub(ir.Sub(idiag, miv), kv))},
						cellWork(miv)...)...,
				).At(353),
			).At(340),
		).At(326)
	} else {
		// Tiled: loop over angle blocks; within a block, a (j,k)
		// wavefront with the block's angles processed consecutively per
		// cell (the paper's Figure 7).
		nblk := (cfg.Angles + cfg.Block - 1) / cfg.Block
		diagMax := ir.Sub(ir.Add(jt, kt), ir.C(2))
		blockBase := ir.Mul(mib, ir.C(cfg.Block))
		sweepBody = ir.For(mib, ir.C(0), ir.C(nblk-1),
			ir.For(idiag, ir.C(0), diagMax,
				ir.For(kv,
					ir.Max(ir.C(0), ir.Sub(idiag, jtEnd)),
					ir.Min(ktEnd, idiag),
					ir.Set(jv, ir.Sub(idiag, kv)),
					ir.For(miv,
						blockBase,
						ir.Min(ir.Sub(mmi, ir.C(1)), ir.Add(blockBase, ir.C(cfg.Block-1))),
						cellWork(miv)...,
					).At(360),
				).At(353),
			).At(326),
		).At(320)
	}

	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.Sub(ts, ir.C(1)),
			ir.For(iq, ir.C(0), ir.Sub(oct, ir.C(1)),
				sweepBody,
			).At(131),
		).AsTimeStep().At(100),
	}
	return p, nil
}

// Sweep3DVariants returns the paper's Figure 8 curve set for mesh size n:
// original, blocking factors 1/2/3/6, and blocking 6 plus dimension
// interchange.
func Sweep3DVariants(n int64) []Sweep3DConfig {
	base := DefaultSweep3D()
	base.N = n
	var out []Sweep3DConfig
	for _, b := range []int64{0, 1, 2, 3, 6} {
		c := base
		c.Block = b
		out = append(out, c)
	}
	last := base
	last.Block = 6
	last.DimInterchange = true
	out = append(out, last)
	return out
}
