// Package workloads builds the IR programs the repository's experiments
// analyze: the paper's Figure 1 and Figure 2 examples, IR models of the
// Sweep3D and GTC case-study kernels with all of the paper's
// transformation variants, and synthetic microkernels used by tests and
// ablation benchmarks.
package workloads

import (
	"fmt"

	"reusetool/internal/ir"
	"reusetool/internal/scope"
	"reusetool/internal/trace"
)

// FindScope locates a scope by kind and name in a finalized program's
// scope tree, returning trace.NoScope if absent. Loops are named by their
// loop variable.
func FindScope(info *ir.Info, kind scope.Kind, name string) trace.ScopeID {
	found := trace.NoScope
	info.Scopes.PreOrder(func(id trace.ScopeID) {
		if found == trace.NoScope {
			n := info.Scopes.Node(id)
			if n.Kind == kind && n.Name == name {
				found = id
			}
		}
	})
	return found
}

// MustFinalize finalizes a program, panicking on error. Workload builders
// construct programs from trusted code, so errors indicate builder bugs.
func MustFinalize(p *ir.Program) *ir.Info {
	info, err := p.Finalize()
	if err != nil {
		panic(fmt.Sprintf("workloads: %s: %v", p.Name, err))
	}
	return info
}

// Fig1 builds the paper's Figure 1 loop nest over column-major A(N,M) and
// B(N,M): interchanged=false gives variant (a), where the inner loop walks
// rows and spatial reuse is carried by the outer loop; interchanged=true
// gives variant (b) with unit-stride inner traversal.
func Fig1(interchanged bool) *ir.Program {
	name := "fig1a"
	if interchanged {
		name = "fig1b"
	}
	p := ir.NewProgram(name)
	n := p.Param("N", 256)
	m := p.Param("M", 256)
	a := p.AddArray("A", 8, n, m)
	b := p.AddArray("B", 8, n, m)
	i, j := p.Var("i"), p.Var("j")
	main := p.AddRoutine("main", "fig1.f", 1)

	body := ir.Do(a.Read(i, j), b.Read(i, j), a.WriteRef(i, j))
	if interchanged {
		// DO J / DO I: inner loop walks the contiguous first dimension.
		main.Body = []ir.Stmt{
			ir.For(j, ir.C(0), ir.Sub(m, ir.C(1)),
				ir.For(i, ir.C(0), ir.Sub(n, ir.C(1)), body).At(3),
			).At(2),
		}
	} else {
		// DO I / DO J: inner loop jumps a column per iteration.
		main.Body = []ir.Stmt{
			ir.For(i, ir.C(0), ir.Sub(n, ir.C(1)),
				ir.For(j, ir.C(0), ir.Sub(m, ir.C(1)), body).At(3),
			).At(2),
		}
	}
	return p
}

// Fig2 builds the paper's Figure 2 loop nest (cache-line fragmentation
// example): stride-4 accesses to A and B with the A references split
// across two reuse groups.
func Fig2() *ir.Program {
	p := ir.NewProgram("fig2")
	n := p.Param("N", 400)
	m := p.Param("M", 100)
	a := p.AddArray("A", 8, n, m)
	b := p.AddArray("B", 8, n, m)
	i, j := p.Var("i"), p.Var("j")
	main := p.AddRoutine("main", "fig2.f", 1)
	main.Body = []ir.Stmt{
		ir.For(j, ir.C(1), ir.Sub(m, ir.C(1)),
			ir.ForStep(i, ir.C(0), ir.Sub(n, ir.C(4)), ir.C(4),
				ir.Do(
					a.Read(i, ir.Sub(j, ir.C(1))),
					b.Read(ir.Add(i, ir.C(1)), j),
					b.Read(ir.Add(i, ir.C(3)), j),
					a.WriteRef(ir.Add(i, ir.C(2)), j),
				),
				ir.Do(
					a.Read(ir.Add(i, ir.C(1)), ir.Sub(j, ir.C(1))),
					b.Read(i, j),
					b.Read(ir.Add(i, ir.C(2)), j),
					a.WriteRef(ir.Add(i, ir.C(3)), j),
				),
			).At(3),
		).At(2),
	}
	return p
}

// Stream builds a simple streaming kernel: t passes over an array of n
// elements. Used by tests and ablations.
func Stream(n, passes int64) *ir.Program {
	p := ir.NewProgram("stream")
	np := p.Param("N", n)
	tp := p.Param("T", passes)
	a := p.AddArray("A", 8, np)
	tv, i := p.Var("t"), p.Var("i")
	main := p.AddRoutine("main", "stream.f", 1)
	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.Sub(tp, ir.C(1)),
			ir.For(i, ir.C(0), ir.Sub(np, ir.C(1)),
				ir.Do(a.Read(i))).At(3),
		).AsTimeStep().At(2),
	}
	return p
}

// Stencil builds a 5-point 2D Jacobi sweep: t time steps over an n x n
// grid with in/out arrays.
func Stencil(n, steps int64) *ir.Program {
	p := ir.NewProgram("stencil")
	np := p.Param("N", n)
	tp := p.Param("T", steps)
	in := p.AddArray("in", 8, np, np)
	out := p.AddArray("out", 8, np, np)
	tv, i, j := p.Var("t"), p.Var("i"), p.Var("j")
	main := p.AddRoutine("main", "stencil.f", 1)
	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.Sub(tp, ir.C(1)),
			ir.For(j, ir.C(1), ir.Sub(np, ir.C(2)),
				ir.For(i, ir.C(1), ir.Sub(np, ir.C(2)),
					ir.Do(
						in.Read(i, j),
						in.Read(ir.Sub(i, ir.C(1)), j),
						in.Read(ir.Add(i, ir.C(1)), j),
						in.Read(i, ir.Sub(j, ir.C(1))),
						in.Read(i, ir.Add(j, ir.C(1))),
						out.WriteRef(i, j),
					)).At(4),
			).At(3),
		).AsTimeStep().At(2),
	}
	return p
}

// Transpose builds a naive out-of-place transpose of an n x n matrix:
// unit-stride reads, column-stride writes.
func Transpose(n int64) *ir.Program {
	p := ir.NewProgram("transpose")
	np := p.Param("N", n)
	a := p.AddArray("A", 8, np, np)
	b := p.AddArray("B", 8, np, np)
	i, j := p.Var("i"), p.Var("j")
	main := p.AddRoutine("main", "transpose.f", 1)
	main.Body = []ir.Stmt{
		ir.For(j, ir.C(0), ir.Sub(np, ir.C(1)),
			ir.For(i, ir.C(0), ir.Sub(np, ir.C(1)),
				ir.Do(a.Read(i, j), b.WriteRef(j, i))).At(3),
		).At(2),
	}
	return p
}

// RandomGather builds a gather through an index array: t passes of n
// indirect reads. The index contents are supplied by the caller at init
// time (see interp.WithInit).
func RandomGather(n, passes int64) (*ir.Program, *ir.Array) {
	p := ir.NewProgram("gather")
	np := p.Param("N", n)
	tp := p.Param("T", passes)
	idx := p.AddDataArray("idx", 8, np)
	a := p.AddArray("A", 8, np)
	tv, i := p.Var("t"), p.Var("i")
	main := p.AddRoutine("main", "gather.f", 1)
	main.Body = []ir.Stmt{
		ir.For(tv, ir.C(0), ir.Sub(tp, ir.C(1)),
			ir.For(i, ir.C(0), ir.Sub(np, ir.C(1)),
				ir.Do(
					idx.Read(i), // the index load itself touches memory
					a.Read(&ir.Load{Array: idx, Index: []ir.Expr{i}}),
				)).At(3),
		).AsTimeStep().At(2),
	}
	return p, idx
}
