package workloads

import "reusetool/internal/ir"

// MatMul builds a dense matrix multiply C += A*B over n x n column-major
// matrices (ijk order: i outer, k inner). With block > 0 all three loops
// are tiled — the loop-blocking transformation of Table I's third row.
// The blocked variant performs exactly the same accesses in a different
// order.
func MatMul(n, block int64) *ir.Program {
	name := "matmul"
	if block > 0 {
		name = "matmul-blocked"
	}
	p := ir.NewProgram(name)
	np := p.Param("N", n)
	a := p.AddArray("A", 8, np, np)
	b := p.AddArray("B", 8, np, np)
	c := p.AddArray("C", 8, np, np)
	i, j, k := p.Var("i"), p.Var("j"), p.Var("k")
	main := p.AddRoutine("main", "matmul.f", 1)

	body := ir.Do(
		c.Read(i, j),
		a.Read(i, k),
		b.Read(k, j),
		c.WriteRef(i, j),
	)
	end := ir.Sub(np, ir.C(1))

	if block <= 0 {
		main.Body = []ir.Stmt{
			ir.For(j, ir.C(0), end,
				ir.For(k, ir.C(0), end,
					ir.For(i, ir.C(0), end, body).At(4),
				).At(3),
			).At(2),
		}
		return p
	}

	jj, kk := p.Var("jj"), p.Var("kk")
	bm1 := ir.C(block - 1)
	main.Body = []ir.Stmt{
		ir.ForStep(jj, ir.C(0), end, ir.C(block),
			ir.ForStep(kk, ir.C(0), end, ir.C(block),
				ir.For(j, jj, ir.Min(end, ir.Add(jj, bm1)),
					ir.For(k, kk, ir.Min(end, ir.Add(kk, bm1)),
						ir.For(i, ir.C(0), end, body).At(6),
					).At(5),
				).At(4),
			).At(3),
		).At(2),
	}
	return p
}

// Gather builds t passes of an indirect read A[idx[p]] over n elements,
// with the index contents chosen by order:
//
//	"sorted"  — identity permutation (perfect locality),
//	"random"  — a seeded shuffle (the irregular pattern of Table I row 2),
//	"strided" — a large co-prime stride (pathological but deterministic).
//
// Comparing "random" against "sorted" quantifies the payoff of the data
// reordering the paper's Table I recommends for irregular self-reuse.
func Gather(n, passes int64, order string, seed int64) (*ir.Program, func(m Filler) error) {
	prog, idx := RandomGather(n, passes)
	fill := func(m Filler) error {
		switch order {
		case "sorted":
			m.FillData(idx, func(i int64) int64 { return i })
		case "strided":
			m.FillData(idx, func(i int64) int64 { return (i * 997) % n })
		default: // random
			perm := pseudoShuffle(n, seed)
			m.FillData(idx, func(i int64) int64 { return perm[i] })
		}
		return nil
	}
	return prog, fill
}

// Filler is the subset of interp.Machine the Gather initializer needs;
// declared locally to avoid importing interp from the builder layer.
type Filler interface {
	FillData(a *ir.Array, f func(i int64) int64)
}

// pseudoShuffle builds a deterministic permutation of [0,n) using a
// multiplicative hash walk (no math/rand to keep builders allocation-lean).
func pseudoShuffle(n, seed int64) []int64 {
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int64(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
