package workloads

import (
	"fmt"
	"sort"

	"reusetool/internal/interp"
	"reusetool/internal/ir"
)

// builders maps the public workload names — the ones `reusetool
// -workload` and the daemon's "workload" request field accept — to
// their constructors. Entries return the program plus an optional init
// callback that fills Data arrays before execution.
var builders = map[string]func() (*ir.Program, func(*interp.Machine) error, error){
	"fig1a": func() (*ir.Program, func(*interp.Machine) error, error) {
		return Fig1(false), nil, nil
	},
	"fig1b": func() (*ir.Program, func(*interp.Machine) error, error) {
		return Fig1(true), nil, nil
	},
	"fig2": func() (*ir.Program, func(*interp.Machine) error, error) {
		return Fig2(), nil, nil
	},
	"stream": func() (*ir.Program, func(*interp.Machine) error, error) {
		return Stream(1<<14, 4), nil, nil
	},
	"stencil": func() (*ir.Program, func(*interp.Machine) error, error) {
		return Stencil(128, 4), nil, nil
	},
	"transpose": func() (*ir.Program, func(*interp.Machine) error, error) {
		return Transpose(256), nil, nil
	},
	"sweep3d": func() (*ir.Program, func(*interp.Machine) error, error) {
		p, err := Sweep3D(DefaultSweep3D())
		return p, nil, err
	},
	"sweep3d-blk6": func() (*ir.Program, func(*interp.Machine) error, error) {
		cfg := DefaultSweep3D()
		cfg.Block = 6
		p, err := Sweep3D(cfg)
		return p, nil, err
	},
	"sweep3d-blk6ic": func() (*ir.Program, func(*interp.Machine) error, error) {
		cfg := DefaultSweep3D()
		cfg.Block = 6
		cfg.DimInterchange = true
		p, err := Sweep3D(cfg)
		return p, nil, err
	},
	"gtc": func() (*ir.Program, func(*interp.Machine) error, error) {
		return GTC(DefaultGTC())
	},
	"gtc-tuned": func() (*ir.Program, func(*interp.Machine) error, error) {
		cfg := DefaultGTC()
		vs := GTCVariants(cfg)
		return GTC(vs[len(vs)-1].Config)
	},
}

// Build constructs a built-in workload by name. The error of an unknown
// name lists the valid ones.
func Build(name string) (*ir.Program, func(*interp.Machine) error, error) {
	b, ok := builders[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown workload %q (try %v)", name, Names())
	}
	return b()
}

// Names lists the built-in workload names in sorted order.
func Names() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
