package histo

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func collect(h *Histogram) []Bin {
	var out []Bin
	h.Each(func(b Bin) { out = append(out, b) })
	return out
}

func TestScaleIdentity(t *testing.T) {
	h := New()
	for d := uint64(0); d < 1000; d += 7 {
		h.AddN(d, d%13+1)
	}
	h.AddN(Cold, 5)
	want := collect(h)
	total, cold := h.Total(), h.Cold()
	h.Scale(1)
	if got := collect(h); len(got) != len(want) {
		t.Fatalf("Scale(1) changed bins: %v vs %v", got, want)
	}
	if h.Total() != total || h.Cold() != cold {
		t.Fatal("Scale(1) changed totals")
	}
}

func TestScaleInteger(t *testing.T) {
	h := New()
	h.AddN(3, 10)
	h.AddN(500, 7)
	h.AddN(Cold, 4)
	h.Scale(64)
	if h.Total() != 17*64 {
		t.Fatalf("total = %d, want %d", h.Total(), 17*64)
	}
	if h.Cold() != 4*64 {
		t.Fatalf("cold = %d, want %d", h.Cold(), 4*64)
	}
	bins := collect(h)
	if len(bins) != 2 || bins[0].Count != 640 || bins[1].Count != 448 {
		t.Fatalf("bins = %v", bins)
	}
	if h.Max() != 500 {
		t.Fatalf("max = %d, want 500", h.Max())
	}
}

func TestScaleHalfExact(t *testing.T) {
	// All-even counts halve exactly.
	h := New()
	h.AddN(1, 10)
	h.AddN(2, 4)
	h.AddN(1000, 6)
	h.AddN(Cold, 8)
	h.Scale(0.5)
	if h.Total() != 10 || h.Cold() != 4 {
		t.Fatalf("total/cold = %d/%d, want 10/4", h.Total(), h.Cold())
	}
	bins := collect(h)
	if len(bins) != 3 || bins[0].Count != 5 || bins[1].Count != 2 || bins[2].Count != 3 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestScaleHalfLargestRemainder(t *testing.T) {
	// Odd counts: 3,3,5 (total 11) halved -> target round(5.5)=6.
	// Floors 1,1,2 sum 4; remainders all .5 -> deficit 2 goes to the two
	// lowest bins.
	h := New()
	h.AddN(1, 3)
	h.AddN(2, 3)
	h.AddN(3, 5)
	h.Scale(0.5)
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	bins := collect(h)
	if len(bins) != 3 || bins[0].Count != 2 || bins[1].Count != 2 || bins[2].Count != 2 {
		t.Fatalf("bins = %v, want counts 2,2,2", bins)
	}
}

func TestScaleTotalInvariant(t *testing.T) {
	// For any contents and factor, the scaled finite total must be exactly
	// round(total*r) and the sum of bins must equal it.
	factors := []float64{0.5, 0.25, 0.3, 2.5, 1.0 / 3.0}
	h := New()
	for d := uint64(0); d < 5000; d += 11 {
		h.AddN(d, d%17+1)
	}
	for _, r := range factors {
		c := h.Clone()
		before := c.Total()
		c.Scale(r)
		want := uint64(float64(before)*r + 0.5)
		if c.Total() != want {
			t.Fatalf("r=%v: total = %d, want %d", r, c.Total(), want)
		}
		var sum uint64
		c.Each(func(b Bin) { sum += b.Count })
		if sum != c.Total() {
			t.Fatalf("r=%v: bin sum %d != total %d", r, sum, c.Total())
		}
	}
}

func TestScaleDeterministic(t *testing.T) {
	build := func() *Histogram {
		h := New()
		for d := uint64(0); d < 3000; d += 5 {
			h.AddN(d, d%7+1)
		}
		h.AddN(Cold, 13)
		return h
	}
	a, b := build(), build()
	a.Scale(1.0 / 3.0)
	b.Scale(1.0 / 3.0)
	ab, bb := collect(a), collect(b)
	if len(ab) != len(bb) {
		t.Fatalf("bin counts differ: %d vs %d", len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("bin %d differs: %v vs %v", i, ab[i], bb[i])
		}
	}
	if a.Cold() != b.Cold() {
		t.Fatal("cold differs")
	}
}

// TestScaleGobRoundTrip: a scaled histogram must survive the gob wire
// format byte-identically — scaling feeds persist-v2 artifacts.
func TestScaleGobRoundTrip(t *testing.T) {
	h := New()
	for d := uint64(0); d < 2000; d += 3 {
		h.AddN(d, d%5+1)
	}
	h.AddN(Cold, 9)
	h.Scale(0.5)
	h.Scale(64)

	encode := func(x *Histogram) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(x); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	b1 := encode(h)
	var back Histogram
	if err := gob.NewDecoder(bytes.NewReader(b1)).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() || back.Cold() != h.Cold() || back.Max() != h.Max() {
		t.Fatalf("round trip changed totals: %v vs %v", &back, h)
	}
	b2 := encode(&back)
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-encoded bytes differ")
	}
}

func TestScaleHalveThenDouble(t *testing.T) {
	// The adaptive sampler's pattern: halve k times, then multiply by the
	// final integer rate. Totals must stay within k of a direct scaling
	// (each halve rounds at most one sample per direction).
	h := New()
	for d := uint64(0); d < 800; d += 2 {
		h.AddN(d, 3)
	}
	before := h.Total()
	h.Scale(0.5)
	h.Scale(0.5)
	h.Scale(4)
	diff := int64(h.Total()) - int64(before)
	if diff < -8 || diff > 8 {
		t.Fatalf("halve twice + x4 drifted by %d samples", diff)
	}
}

func TestMergeScaled(t *testing.T) {
	a := New()
	a.AddN(5, 10)
	b := New()
	b.AddN(5, 7)
	b.AddN(600, 3)
	b.AddN(Cold, 2)
	a.MergeScaled(b, 2)
	if b.Total() != 10 || b.Cold() != 2 {
		t.Fatal("MergeScaled modified its argument")
	}
	if a.Total() != 10+20 || a.Cold() != 4 {
		t.Fatalf("total/cold = %d/%d", a.Total(), a.Cold())
	}
	bins := collect(a)
	if len(bins) != 2 || bins[0].Count != 24 || bins[1].Count != 6 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestScaleZero(t *testing.T) {
	h := New()
	h.AddN(7, 9)
	h.AddN(Cold, 3)
	h.Scale(0)
	if h.Total() != 0 || h.Cold() != 0 || h.Bins() != 0 || h.Max() != 0 {
		t.Fatalf("Scale(0) left %v", h)
	}
}

func TestScalePanicsOnInvalid(t *testing.T) {
	for _, r := range []float64{-1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale(%v) did not panic", r)
				}
			}()
			New().Scale(r)
		}()
	}
}
