package histo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinIndexRoundTrip(t *testing.T) {
	for _, res := range []int{1, 2, 8, 64, 256} {
		h := NewRes(res)
		ds := []uint64{0, 1, 2, 7, 100, 255, 256, 257, 511, 512, 1000, 1 << 20, 1<<40 + 12345}
		for _, d := range ds {
			idx := h.binIndex(d)
			lo, hi := h.binBounds(idx)
			if d < lo || d > hi {
				t.Errorf("res=%d d=%d: bin [%d,%d] does not contain d", res, d, lo, hi)
			}
		}
	}
}

func TestBinBoundsContiguousAndOrdered(t *testing.T) {
	h := New()
	var prevHi uint64
	first := true
	// Walk bins in order through several octaves.
	for idx := uint32(0); idx < linearMax+16*DefaultResolution; idx++ {
		lo, hi := h.binBounds(idx)
		if lo > hi {
			t.Fatalf("bin %d: lo %d > hi %d", idx, lo, hi)
		}
		if !first && lo != prevHi+1 {
			t.Fatalf("bin %d: lo %d, previous hi %d (gap or overlap)", idx, lo, prevHi)
		}
		prevHi = hi
		first = false
	}
}

func TestExactBelowLinearMax(t *testing.T) {
	h := New()
	for d := uint64(0); d < linearMax; d++ {
		h.AddN(d, d+1)
	}
	var bins int
	h.Each(func(b Bin) {
		if b.Lo != b.Hi {
			t.Errorf("bin [%d,%d] below linearMax is not exact", b.Lo, b.Hi)
		}
		if b.Count != b.Lo+1 {
			t.Errorf("bin %d count = %d, want %d", b.Lo, b.Count, b.Lo+1)
		}
		bins++
	})
	if bins != linearMax {
		t.Errorf("got %d bins, want %d", bins, linearMax)
	}
}

func TestTotalsAndCold(t *testing.T) {
	h := New()
	h.Add(5)
	h.Add(Cold)
	h.AddN(1000, 3)
	h.Add(Cold)
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if h.Cold() != 2 {
		t.Errorf("Cold = %d, want 2", h.Cold())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d, want 1000", h.Max())
	}
}

func TestCountAtLeastExactRegion(t *testing.T) {
	h := New()
	for d := uint64(0); d < 200; d++ {
		h.Add(d)
	}
	// In the exact region, CountAtLeast must be exact.
	for _, th := range []uint64{0, 1, 50, 199, 200} {
		want := float64(0)
		if th < 200 {
			want = float64(200 - th)
		}
		if got := h.CountAtLeast(th); got != want {
			t.Errorf("CountAtLeast(%d) = %v, want %v", th, got, want)
		}
	}
}

func TestCountAtLeastMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New()
		for i := 0; i < 500; i++ {
			h.Add(uint64(rng.Intn(1 << 16)))
		}
		prev := h.CountAtLeast(0)
		if prev != float64(h.Total()) {
			return false
		}
		for th := uint64(1); th < 1<<17; th *= 2 {
			cur := h.CountAtLeast(th)
			if cur > prev+1e-9 || cur < 0 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCountAtLeastApproximationBound(t *testing.T) {
	// The uniform-in-bin estimate can be off by at most one bin's count for
	// thresholds inside a bin; verify against exact counting.
	rng := rand.New(rand.NewSource(42))
	h := New()
	ds := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ {
		d := uint64(rng.Intn(1 << 14))
		ds = append(ds, d)
		h.Add(d)
	}
	for _, th := range []uint64{100, 300, 1000, 3000, 9000} {
		var exact float64
		for _, d := range ds {
			if d >= th {
				exact++
			}
		}
		got := h.CountAtLeast(th)
		// Relative distance error per sample is bounded by one sub-bucket
		// (1/8 of an octave); allow a generous tolerance tied to bin size.
		tol := float64(th)/float64(DefaultResolution)*float64(len(ds))/float64(1<<14) + 1
		if diff := got - exact; diff > tol || diff < -tol {
			t.Errorf("CountAtLeast(%d) = %.1f, exact %.1f (tolerance %.1f)", th, got, exact, tol)
		}
	}
}

func TestMergeMatchesCombinedAdds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, both := New(), New(), New()
		for i := 0; i < 300; i++ {
			d := uint64(rng.Intn(1 << 20))
			if rng.Intn(10) == 0 {
				d = Cold
			}
			if rng.Intn(2) == 0 {
				a.Add(d)
			} else {
				b.Add(d)
			}
			both.Add(d)
		}
		a.Merge(b)
		if a.Total() != both.Total() || a.Cold() != both.Cold() || a.Max() != both.Max() {
			return false
		}
		// Compare bin by bin.
		type key struct{ lo, hi uint64 }
		m := map[key]uint64{}
		a.Each(func(bn Bin) { m[key{bn.Lo, bn.Hi}] = bn.Count })
		equal := true
		both.Each(func(bn Bin) {
			if m[key{bn.Lo, bn.Hi}] != bn.Count {
				equal = false
			}
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	h := New()
	for i := 0; i < 100; i++ {
		h.Add(10)
	}
	for i := 0; i < 100; i++ {
		h.Add(100)
	}
	if q := h.Quantile(0.25); q != 10 {
		t.Errorf("Quantile(0.25) = %d, want 10", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("Quantile(1.0) = %d, want 100", q)
	}
	empty := New()
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %d, want 0", q)
	}
}

func TestMean(t *testing.T) {
	h := New()
	h.AddN(10, 5)
	h.AddN(20, 5)
	if m := h.Mean(); m != 15 {
		t.Errorf("Mean = %v, want 15 (exact bins)", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := New()
	h.Add(7)
	c := h.Clone()
	c.Add(9)
	if h.Total() != 1 || c.Total() != 2 {
		t.Errorf("clone not independent: h.Total=%d c.Total=%d", h.Total(), c.Total())
	}
}

func TestResolutionTradeoff(t *testing.T) {
	// Higher resolution must never produce wider bins.
	coarse, fine := NewRes(2), NewRes(64)
	for _, d := range []uint64{300, 5000, 1 << 20} {
		cl, ch := coarse.binBounds(coarse.binIndex(d))
		fl, fh := fine.binBounds(fine.binIndex(d))
		if fh-fl > ch-cl {
			t.Errorf("d=%d: fine bin [%d,%d] wider than coarse [%d,%d]", d, fl, fh, cl, ch)
		}
	}
}

func TestInvalidResolutionPanics(t *testing.T) {
	for _, res := range []int{0, 3, 512, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRes(%d) did not panic", res)
				}
			}()
			NewRes(res)
		}()
	}
}

func BenchmarkAdd(b *testing.B) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	ds := make([]uint64, 4096)
	for i := range ds {
		ds[i] = uint64(rng.Intn(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(ds[i&4095])
	}
}

func TestGobRoundTrip(t *testing.T) {
	h := NewRes(16)
	h.AddN(5, 10)
	h.AddN(100000, 3)
	h.Add(Cold)
	data, err := h.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := back.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() || back.Cold() != h.Cold() || back.Max() != h.Max() {
		t.Errorf("round trip lost counters: %v vs %v", back.String(), h.String())
	}
	if back.Resolution() != 16 {
		t.Errorf("resolution = %d, want 16", back.Resolution())
	}
	if back.Bins() != h.Bins() {
		t.Errorf("bins = %d, want %d", back.Bins(), h.Bins())
	}
	// The decoded histogram accepts further samples.
	back.Add(7)
	if back.Total() != h.Total()+1 {
		t.Error("decoded histogram not usable")
	}
	// Decoding garbage fails.
	var bad Histogram
	if err := bad.GobDecode([]byte("junk")); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestStringSummary(t *testing.T) {
	h := New()
	if got := h.String(); got != "histo{total=0 cold=0}" {
		t.Errorf("empty String = %q", got)
	}
	h.AddN(10, 4)
	h.Add(Cold)
	s := h.String()
	for _, want := range []string{"total=4", "cold=1", "p50=10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
