package histo

import "testing"

func TestFromMassesTotalExact(t *testing.T) {
	dists := []float64{1, 4, 9, 40, 300, 5000}
	for _, mass := range []float64{0, 0.4, 1, 5.5, 6, 17, 1000.49, 123456.7} {
		h := FromMasses(DefaultResolution, dists, mass)
		want := uint64(mass + 0.5)
		if mass < 0.5 {
			want = 0
		}
		if got := h.Total(); got != want {
			t.Errorf("mass %v: Total = %d, want %d", mass, got, want)
		}
		if h.Cold() != 0 {
			t.Errorf("mass %v: cold = %d, want 0", mass, h.Cold())
		}
	}
}

func TestFromMassesDeterministic(t *testing.T) {
	dists := []float64{2, 2, 8, 8}
	a := FromMasses(DefaultResolution, dists, 10)
	b := FromMasses(DefaultResolution, dists, 10)
	var ba, bb []Bin
	a.Each(func(bin Bin) { ba = append(ba, bin) })
	b.Each(func(bin Bin) { bb = append(bb, bin) })
	if len(ba) != len(bb) {
		t.Fatalf("bin counts differ: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("bin %d differs: %+v vs %+v", i, ba[i], bb[i])
		}
	}
	// 10 units over 4 slots: first two slots get 3, last two get 2.
	if got := a.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
}

func TestFromMassesEmpty(t *testing.T) {
	if got := FromMasses(DefaultResolution, nil, 100).Total(); got != 0 {
		t.Fatalf("Total = %d, want 0 for empty quantile list", got)
	}
}

func TestFromMassesNegativeDistanceClamps(t *testing.T) {
	h := FromMasses(DefaultResolution, []float64{-3, 5}, 4)
	if got := h.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
}
