// Package histo implements reuse-distance histograms.
//
// Distances are binned exactly for small values and logarithmically above,
// with a configurable number of sub-buckets per power-of-two octave. This is
// the usual trade-off for reuse-distance tools: short distances (the ones
// near small cache capacities) are kept exact, long ones are compressed.
// Section II of the paper notes that collecting one histogram per
// (source scope, carrying scope) pair yields "more but smaller histograms".
//
// The bucket store is a growable flat []uint64 indexed by bin number
// (linear bins first, then octave*sub + sub-bucket). The per-access Add is
// the hottest function of the whole toolkit — every reuse arc of every
// engine lands here — so the flat layout buys an indexed add with no
// hashing, and the small-distance fast path skips the log2 entirely. The
// slice grows lazily to the highest touched bin, so an
// almost-single-distance pattern still costs only a few hundred bytes
// (bin indices grow logarithmically with distance). The gob wire format
// stays sparse: occupied (bin, count) pairs in increasing bin order (see
// gob.go), which is also byte-deterministic, unlike the map encoding it
// replaces.
package histo

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// linearMax is the exclusive upper bound of the exactly-binned range.
// Distances below linearMax each get their own bin.
const linearMax = 256

const linearLog = 8 // log2(linearMax)

// Cold is the distance value used to record compulsory (first-touch)
// accesses, which have no finite reuse distance.
const Cold = math.MaxUint64

// Histogram counts reuse distances. The zero value of H is NOT ready to
// use; construct with New or NewRes.
type Histogram struct {
	sub    uint64   // sub-buckets per octave above linearMax; power of two
	counts []uint64 // flat bin store, indexed by bin number
	occ    int      // occupied (non-zero) bins
	cold   uint64
	total  uint64 // finite-distance samples only
	maxD   uint64
}

// DefaultResolution is the default number of sub-buckets per octave.
const DefaultResolution = 8

// New returns an empty histogram with DefaultResolution sub-buckets per
// octave.
func New() *Histogram { return NewRes(DefaultResolution) }

// NewRes returns an empty histogram with the given sub-buckets per octave.
// res must be a power of two in [1, 256].
func NewRes(res int) *Histogram {
	if res < 1 || res > linearMax || res&(res-1) != 0 {
		panic(fmt.Sprintf("histo: invalid resolution %d", res))
	}
	return &Histogram{sub: uint64(res)}
}

// Resolution reports the sub-buckets per octave.
func (h *Histogram) Resolution() int { return int(h.sub) }

// binIndex maps a finite distance to its bin.
func (h *Histogram) binIndex(d uint64) uint32 {
	if d < linearMax {
		return uint32(d)
	}
	return h.logIndex(d)
}

// logIndex maps a finite distance >= linearMax to its logarithmic bin.
func (h *Histogram) logIndex(d uint64) uint32 {
	o := uint(bits.Len64(d) - 1) // 2^o <= d < 2^(o+1)
	step := uint64(1) << o / h.sub
	k := (d - uint64(1)<<o) / step
	return uint32(linearMax) + uint32(o-linearLog)*uint32(h.sub) + uint32(k)
}

// binBounds returns the inclusive [lo, hi] distance range of bin idx.
func (h *Histogram) binBounds(idx uint32) (lo, hi uint64) {
	if idx < linearMax {
		return uint64(idx), uint64(idx)
	}
	rel := uint64(idx - linearMax)
	o := uint(rel/h.sub) + linearLog
	k := rel % h.sub
	step := uint64(1) << o / h.sub
	lo = uint64(1)<<o + k*step
	return lo, lo + step - 1
}

// Add records one sample of distance d. Pass Cold for compulsory accesses.
// This is the per-reuse-arc hot path: small distances (the common case on
// stencil/stream reuse) index the flat store directly without the log2.
//
//reuse:hotpath
func (h *Histogram) Add(d uint64) {
	if d < linearMax && int(d) < len(h.counts) {
		// Fast path: linear bin already allocated — one indexed add.
		if h.counts[d] == 0 {
			h.occ++
		}
		h.counts[d]++
		h.total++
		if d > h.maxD {
			h.maxD = d
		}
		return
	}
	h.AddN(d, 1)
}

// AddN records n samples of distance d.
//
//reuse:hotpath
func (h *Histogram) AddN(d uint64, n uint64) {
	if n == 0 {
		return
	}
	if d == Cold {
		h.cold += n
		return
	}
	idx := h.binIndex(d)
	if int(idx) >= len(h.counts) {
		h.grow(int(idx))
	}
	if h.counts[idx] == 0 {
		h.occ++
	}
	h.counts[idx] += n
	h.total += n
	if d > h.maxD {
		h.maxD = d
	}
}

// grow extends the flat store so bin idx is addressable. Capacity is
// rounded up so repeated growth amortizes; bin indices grow
// logarithmically with distance, so the store stays small.
func (h *Histogram) grow(idx int) {
	newLen := 2 * len(h.counts)
	if newLen < 64 {
		newLen = 64
	}
	if newLen <= idx {
		newLen = idx + 1
	}
	grown := make([]uint64, newLen)
	copy(grown, h.counts)
	h.counts = grown
}

// Total reports the number of finite-distance samples.
func (h *Histogram) Total() uint64 { return h.total }

// Cold reports the number of compulsory (first-touch) samples.
func (h *Histogram) Cold() uint64 { return h.cold }

// Max reports the largest recorded finite distance (0 if none).
func (h *Histogram) Max() uint64 { return h.maxD }

// Bins reports the number of occupied bins.
func (h *Histogram) Bins() int { return h.occ }

// Bin is one occupied histogram bin: count samples whose distances fall in
// the inclusive range [Lo, Hi].
type Bin struct {
	Lo, Hi uint64
	Count  uint64
}

// Each calls f for every occupied bin in increasing distance order.
func (h *Histogram) Each(f func(Bin)) {
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := h.binBounds(uint32(idx))
		f(Bin{Lo: lo, Hi: hi, Count: c})
	}
}

// Merge adds all samples of other into h. Resolutions must match.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if h.sub != other.sub {
		panic("histo: merging histograms of different resolutions")
	}
	if len(other.counts) > len(h.counts) {
		h.grow(len(other.counts) - 1)
	}
	for idx, c := range other.counts {
		if c == 0 {
			continue
		}
		if h.counts[idx] == 0 {
			h.occ++
		}
		h.counts[idx] += c
	}
	h.cold += other.cold
	h.total += other.total
	if other.maxD > h.maxD {
		h.maxD = other.maxD
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{sub: h.sub, occ: h.occ,
		cold: h.cold, total: h.total, maxD: h.maxD}
	if len(h.counts) > 0 {
		c.counts = make([]uint64, len(h.counts))
		copy(c.counts, h.counts)
	}
	return c
}

// CountAtLeast estimates the number of finite samples with distance >=
// threshold, assuming distances are uniformly distributed within each bin.
// Cold samples are not included.
func (h *Histogram) CountAtLeast(threshold uint64) float64 {
	var sum float64
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := h.binBounds(uint32(idx))
		switch {
		case lo >= threshold:
			sum += float64(c)
		case hi < threshold:
			// entirely below
		default:
			width := float64(hi-lo) + 1
			above := float64(hi-threshold) + 1
			sum += float64(c) * above / width
		}
	}
	return sum
}

// Quantile returns an approximate distance q of the way (0..1) through the
// finite-sample distribution, using the midpoint of the containing bin.
// Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var acc float64
	var result uint64
	done := false
	h.Each(func(b Bin) {
		if done {
			return
		}
		acc += float64(b.Count)
		if acc >= target {
			result = b.Lo + (b.Hi-b.Lo)/2
			done = true
		}
	})
	if !done {
		result = h.maxD
	}
	return result
}

// Mean returns the approximate mean finite distance using bin midpoints.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := h.binBounds(uint32(idx))
		mid := float64(lo) + float64(hi-lo)/2
		sum += mid * float64(c)
	}
	return sum / float64(h.total)
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "histo{total=%d cold=%d", h.total, h.cold)
	if h.total > 0 {
		fmt.Fprintf(&b, " mean=%.1f p50=%d max=%d", h.Mean(), h.Quantile(0.5), h.maxD)
	}
	b.WriteString("}")
	return b.String()
}
