package histo

import "math"

// FromMasses builds a predicted histogram from a fitted quantile model:
// dists[k] is the predicted reuse distance at quantile (k+0.5)/len(dists)
// and mass is the predicted total count, spread evenly across the
// quantile slots. Quantization uses largest-remainder rounding so the
// returned histogram's Total equals round(mass) exactly — per-slot
// counts are floored, then the leftover units go to the slots with the
// largest fractional parts (lowest slot index on ties), keeping the
// result deterministic.
//
// This is the serving hot path of the cross-input prediction model: it
// allocates only the histogram itself and touches no maps.
//
//reuse:hotpath
func FromMasses(res int, dists []float64, mass float64) *Histogram {
	h := NewRes(res)
	if len(dists) == 0 || mass < 0.5 {
		return h
	}
	total := uint64(math.Round(mass))
	per := mass / float64(len(dists))
	base := uint64(per)
	rest := total - base*uint64(len(dists))
	// rest ≤ len(dists) units remain; every slot carries the same
	// fractional part, so largest-remainder reduces to handing one unit
	// to each of the first `rest` slots.
	for k, d := range dists {
		n := base
		if uint64(k) < rest {
			n++
		}
		if n == 0 {
			continue
		}
		if d < 0 {
			d = 0
		}
		h.AddN(uint64(math.Round(d)), n)
	}
	return h
}
