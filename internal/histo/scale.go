package histo

import (
	"fmt"
	"math"
	"sort"
)

// Scale multiplies every count in the histogram by r with deterministic
// rounding, in place. The sampled reuse-distance engine uses it in two
// places: the adaptive sampler halves retained counts (r = 1/2) each
// time its rate doubles, and report-time scaling multiplies by the final
// rate (integer r, exact).
//
// Integer factors multiply exactly. Fractional factors use
// largest-remainder rounding over the occupied bins in increasing bin
// order: each bin gets floor(count*r), and the difference between
// round(total*r) and the sum of floors is distributed one sample at a
// time to the bins with the largest fractional remainders (ties broken
// toward the lower bin). The result depends only on the bin contents and
// r — never on map order or float summation order — so scaled histograms
// stay byte-reproducible through reports, persist-v2 and gob. The scaled
// finite total is exactly round(total*r); cold counts round half-up
// independently. Max is unchanged (it records the largest distance ever
// observed, which scaling counts does not alter) unless the histogram
// scales to empty.
func (h *Histogram) Scale(r float64) {
	if r == 1 {
		return
	}
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		panic(fmt.Sprintf("histo: invalid scale factor %v", r))
	}
	if r == math.Trunc(r) {
		m := uint64(r)
		if m == 0 {
			h.counts = nil
			h.occ = 0
			h.cold = 0
			h.total = 0
			h.maxD = 0
			return
		}
		for idx, c := range h.counts {
			if c != 0 {
				h.counts[idx] = c * m
			}
		}
		h.total *= m
		h.cold *= m
		return
	}

	type binShare struct {
		idx int
		fl  uint64
		rem float64
	}
	shares := make([]binShare, 0, h.occ)
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		exact := float64(c) * r
		fl := math.Floor(exact)
		shares = append(shares, binShare{idx: idx, fl: uint64(fl), rem: exact - fl})
	}
	target := uint64(math.Floor(float64(h.total)*r + 0.5))
	var base uint64
	for _, s := range shares {
		base += s.fl
	}
	deficit := target - base // >= 0: sum of floors never exceeds round(sum)
	if deficit > 0 {
		order := make([]int, len(shares))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			sa, sb := shares[order[a]], shares[order[b]]
			if sa.rem != sb.rem {
				return sa.rem > sb.rem
			}
			return sa.idx < sb.idx
		})
		for _, oi := range order {
			if deficit == 0 {
				break
			}
			shares[oi].fl++
			deficit--
		}
	}
	h.occ = 0
	for i := range h.counts {
		h.counts[i] = 0
	}
	for _, s := range shares {
		if s.fl == 0 {
			continue
		}
		h.counts[s.idx] = s.fl
		h.occ++
	}
	h.total = target
	h.cold = uint64(math.Floor(float64(h.cold)*r + 0.5))
	if h.total == 0 && h.cold == 0 {
		h.maxD = 0
	}
}

// MergeScaled adds all samples of other, scaled by r with the same
// deterministic rounding as Scale, into h. other is not modified.
// Resolutions must match.
func (h *Histogram) MergeScaled(other *Histogram, r float64) {
	if other == nil {
		return
	}
	sc := other.Clone()
	sc.Scale(r)
	h.Merge(sc)
}
