package histo

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// histogramWire is the serialized form of a Histogram: occupied bins as
// parallel (index, count) slices in increasing bin order. Slices encode
// deterministically, so identical histograms produce identical bytes —
// the map encoding this replaces made every .gob file differ run to run.
//
// Counts carries the legacy map field so datasets written before the flat
// store still decode; it is nil (and therefore omitted by gob) on encode.
type histogramWire struct {
	Sub    uint64
	BinIdx []uint32
	BinCnt []uint64
	Counts map[uint32]uint64
	Cold   uint64
	Total  uint64
	MaxD   uint64
}

// GobEncode implements gob.GobEncoder, allowing collected reuse-distance
// data to be persisted and re-analyzed offline (the paper's workflow:
// collect once, predict for many architectures). The encoding is
// byte-deterministic: occupied bins are emitted in increasing index order.
func (h *Histogram) GobEncode() ([]byte, error) {
	w := histogramWire{
		Sub:   h.sub,
		Cold:  h.cold,
		Total: h.total,
		MaxD:  h.maxD,
	}
	if h.occ > 0 {
		w.BinIdx = make([]uint32, 0, h.occ)
		w.BinCnt = make([]uint64, 0, h.occ)
		for idx, c := range h.counts {
			if c == 0 {
				continue
			}
			w.BinIdx = append(w.BinIdx, uint32(idx))
			w.BinCnt = append(w.BinCnt, c)
		}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder. It accepts both the sorted-pair
// wire format and the legacy map format.
func (h *Histogram) GobDecode(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	h.sub = w.Sub
	h.counts = nil
	h.occ = 0
	h.cold = w.Cold
	h.total = w.Total
	h.maxD = w.MaxD
	if len(w.BinIdx) != len(w.BinCnt) {
		return fmt.Errorf("histo: corrupt wire data: %d bin indices, %d counts", len(w.BinIdx), len(w.BinCnt))
	}
	for i, idx := range w.BinIdx {
		h.setBin(idx, w.BinCnt[i])
	}
	for idx, c := range w.Counts { // legacy map format
		h.setBin(idx, c)
	}
	return nil
}

// setBin installs a decoded (bin, count) pair into the flat store.
func (h *Histogram) setBin(idx uint32, c uint64) {
	if c == 0 {
		return
	}
	if int(idx) >= len(h.counts) {
		h.grow(int(idx))
	}
	if h.counts[idx] == 0 {
		h.occ++
	}
	h.counts[idx] += c
}
