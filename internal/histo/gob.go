package histo

import (
	"bytes"
	"encoding/gob"
)

// histogramWire is the serialized form of a Histogram.
type histogramWire struct {
	Sub    uint64
	Counts map[uint32]uint64
	Cold   uint64
	Total  uint64
	MaxD   uint64
}

// GobEncode implements gob.GobEncoder, allowing collected reuse-distance
// data to be persisted and re-analyzed offline (the paper's workflow:
// collect once, predict for many architectures).
func (h *Histogram) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(histogramWire{
		Sub:    h.sub,
		Counts: h.counts,
		Cold:   h.cold,
		Total:  h.total,
		MaxD:   h.maxD,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (h *Histogram) GobDecode(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	h.sub = w.Sub
	h.counts = w.Counts
	if h.counts == nil {
		h.counts = make(map[uint32]uint64)
	}
	h.cold = w.Cold
	h.total = w.Total
	h.maxD = w.MaxD
	return nil
}
