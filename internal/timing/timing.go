// Package timing is the cycle model standing in for the paper's Itanium2
// wall-clock measurements (Figures 8d and 11d).
//
// Cycles are modeled as a non-stall component (instruction execution at a
// configurable CPI per memory access, covering the surrounding arithmetic)
// plus stall components charged per miss at each level. Transformations
// that affect only instruction-level parallelism — the paper's spcpft
// unroll&jam, the improved instruction schedule, and the pushi
// tiling/fusion instruction-cache overflow — are modeled as per-variant
// adjustments to the non-stall term, exactly the role they play in the
// paper's discussion.
package timing

import "reusetool/internal/cache"

// Model computes cycle counts for one machine configuration.
type Model struct {
	Hier *cache.Hierarchy
	// NonStallCPA is the non-stall cycles charged per memory access
	// (instruction work between accesses). Defaults to Hier.BaseCPI when
	// zero.
	NonStallCPA float64
}

// New returns a timing model for the hierarchy.
func New(h *cache.Hierarchy) *Model {
	return &Model{Hier: h, NonStallCPA: h.BaseCPI}
}

// Breakdown is a cycle count split into components.
type Breakdown struct {
	NonStall float64
	// StallByLevel holds per-level stall cycles, parallel to
	// Hier.Levels.
	StallByLevel []float64
	Total        float64
}

// Stall sums all stall components.
func (b Breakdown) Stall() float64 {
	var s float64
	for _, v := range b.StallByLevel {
		s += v
	}
	return s
}

// Cycles computes the breakdown for a run with the given access count and
// per-level miss counts (keyed by level name). nonStallScale multiplies
// the non-stall term; use 1 for the baseline, <1 for ILP improvements
// (unroll & jam, better schedules), >1 for ILP regressions (instruction
// cache overflow).
func (m *Model) Cycles(accesses uint64, misses map[string]float64, nonStallScale float64) Breakdown {
	if nonStallScale == 0 {
		nonStallScale = 1
	}
	cpa := m.NonStallCPA
	if cpa == 0 {
		cpa = 1
	}
	b := Breakdown{NonStall: float64(accesses) * cpa * nonStallScale}
	b.StallByLevel = make([]float64, len(m.Hier.Levels))
	for i, l := range m.Hier.Levels {
		b.StallByLevel[i] = misses[l.Name] * l.Latency
	}
	b.Total = b.NonStall + b.Stall()
	return b
}
