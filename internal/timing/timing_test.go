package timing

import (
	"testing"

	"reusetool/internal/cache"
)

func TestCyclesBreakdown(t *testing.T) {
	h := cache.Itanium2()
	m := New(h)
	misses := map[string]float64{"L2": 100, "L3": 10, "TLB": 5}
	b := m.Cycles(1000, misses, 1)
	if b.NonStall != 1000 {
		t.Errorf("non-stall = %v, want 1000 (CPI 1)", b.NonStall)
	}
	wantStall := 100*8.0 + 10*120.0 + 5*30.0
	if got := b.Stall(); got != wantStall {
		t.Errorf("stall = %v, want %v", got, wantStall)
	}
	if b.Total != b.NonStall+wantStall {
		t.Errorf("total = %v", b.Total)
	}
}

func TestNonStallScale(t *testing.T) {
	m := New(cache.Itanium2())
	base := m.Cycles(1000, nil, 1)
	improved := m.Cycles(1000, nil, 0.5)
	regressed := m.Cycles(1000, nil, 1.5)
	if improved.NonStall != base.NonStall/2 {
		t.Errorf("scale 0.5: %v vs %v", improved.NonStall, base.NonStall)
	}
	if regressed.NonStall != base.NonStall*1.5 {
		t.Errorf("scale 1.5: %v vs %v", regressed.NonStall, base.NonStall)
	}
	// Zero scale means "default" (1), not free execution.
	if got := m.Cycles(1000, nil, 0); got.NonStall != base.NonStall {
		t.Errorf("scale 0 should default to 1: %v", got.NonStall)
	}
}

func TestMissingLevelsCountZero(t *testing.T) {
	m := New(cache.Itanium2())
	b := m.Cycles(10, map[string]float64{"L2": 1}, 1)
	if b.StallByLevel[1] != 0 || b.StallByLevel[2] != 0 {
		t.Errorf("unlisted levels should stall 0: %v", b.StallByLevel)
	}
}

func TestDefaultCPA(t *testing.T) {
	h := cache.Itanium2()
	m := &Model{Hier: h} // NonStallCPA left zero
	b := m.Cycles(100, nil, 1)
	if b.NonStall != 100 {
		t.Errorf("zero CPA should default to 1: %v", b.NonStall)
	}
}
