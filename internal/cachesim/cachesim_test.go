package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reusetool/internal/cache"
	"reusetool/internal/reusedist"
	"reusetool/internal/trace"
)

func fullyAssoc(name string, lineBits uint, blocks int) *cache.Hierarchy {
	return &cache.Hierarchy{
		Name:   "test",
		Levels: []cache.Level{{Name: name, LineBits: lineBits, Sets: 1, Assoc: blocks}},
	}
}

func TestColdMissesOnly(t *testing.T) {
	s := New(fullyAssoc("C", 6, 16))
	s.EnterScope(0)
	for i := 0; i < 8; i++ {
		s.Access(1, uint64(i)*64, 8, false)
	}
	// Second pass fits in cache: all hits.
	for i := 0; i < 8; i++ {
		s.Access(1, uint64(i)*64, 8, false)
	}
	s.ExitScope(0)
	if got := s.Misses("C"); got != 8 {
		t.Errorf("misses = %d, want 8 (all cold)", got)
	}
	if got := s.ColdMisses("C"); got != 8 {
		t.Errorf("cold = %d, want 8", got)
	}
	if got := s.MissRate("C"); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestCapacityMisses(t *testing.T) {
	s := New(fullyAssoc("C", 6, 4))
	s.EnterScope(0)
	// Cyclic scan of 5 blocks through a 4-block LRU cache: everything
	// misses forever (the classic LRU worst case).
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 5; i++ {
			s.Access(1, uint64(i)*64, 8, false)
		}
	}
	s.ExitScope(0)
	if got := s.Misses("C"); got != 50 {
		t.Errorf("misses = %d, want 50", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s := New(fullyAssoc("C", 6, 2))
	s.EnterScope(0)
	a, b, c := uint64(0), uint64(64), uint64(128)
	s.Access(1, a, 8, false) // miss, cache: {a}
	s.Access(1, b, 8, false) // miss, cache: {a,b}
	s.Access(1, a, 8, false) // hit,  LRU=b
	s.Access(1, c, 8, false) // miss, evicts b, cache: {a,c}
	s.Access(1, a, 8, false) // hit
	s.Access(1, b, 8, false) // miss (was evicted)
	s.ExitScope(0)
	if got := s.Misses("C"); got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
}

func TestSetConflictMisses(t *testing.T) {
	// Direct-mapped cache with 4 sets: blocks 0 and 4 conflict.
	h := &cache.Hierarchy{Levels: []cache.Level{{Name: "DM", LineBits: 6, Sets: 4, Assoc: 1}}}
	s := New(h)
	s.EnterScope(0)
	for i := 0; i < 10; i++ {
		s.Access(1, 0*64, 8, false)
		s.Access(1, 4*64, 8, false)
	}
	s.ExitScope(0)
	// Every access misses: the two blocks ping-pong in set 0.
	if got := s.Misses("DM"); got != 20 {
		t.Errorf("misses = %d, want 20", got)
	}
	// Same pattern in a 2-way cache of the same size: only 2 cold misses.
	h2 := &cache.Hierarchy{Levels: []cache.Level{{Name: "SA", LineBits: 6, Sets: 2, Assoc: 2}}}
	s2 := New(h2)
	s2.EnterScope(0)
	for i := 0; i < 10; i++ {
		s2.Access(1, 0*64, 8, false)
		s2.Access(1, 4*64, 8, false)
	}
	s2.ExitScope(0)
	if got := s2.Misses("SA"); got != 2 {
		t.Errorf("2-way misses = %d, want 2", got)
	}
}

func TestAttribution(t *testing.T) {
	s := New(fullyAssoc("C", 6, 2))
	s.EnterScope(0)
	s.EnterScope(5)
	s.Access(3, 0, 8, false)
	s.Access(4, 64, 8, false)
	s.ExitScope(5)
	s.Access(3, 128, 8, false)
	s.ExitScope(0)
	byRef := s.MissesByRef("C")
	if byRef[3] != 2 || byRef[4] != 1 {
		t.Errorf("missByRef = %v", byRef)
	}
	byScope := s.MissesByScope("C")
	if byScope[5] != 2 || byScope[0] != 1 {
		t.Errorf("missByScope = %v", byScope)
	}
}

func TestMultiLevelIndependence(t *testing.T) {
	h := &cache.Hierarchy{Levels: []cache.Level{
		{Name: "small", LineBits: 6, Sets: 1, Assoc: 2},
		{Name: "big", LineBits: 6, Sets: 1, Assoc: 64},
	}}
	s := New(h)
	s.EnterScope(0)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 8; i++ {
			s.Access(1, uint64(i)*64, 8, false)
		}
	}
	s.ExitScope(0)
	if s.Misses("small") <= s.Misses("big") {
		t.Errorf("small cache should miss more: small=%d big=%d", s.Misses("small"), s.Misses("big"))
	}
	if s.Misses("big") != 8 { // cold only
		t.Errorf("big misses = %d, want 8", s.Misses("big"))
	}
}

func TestBlockSpanningAccess(t *testing.T) {
	s := New(fullyAssoc("C", 6, 8))
	s.EnterScope(0)
	s.Access(1, 60, 8, false) // spans blocks 0 and 1
	s.ExitScope(0)
	if got := s.LevelAccesses("C"); got != 2 {
		t.Errorf("level accesses = %d, want 2", got)
	}
	if got := s.Misses("C"); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
}

func TestUnknownLevelName(t *testing.T) {
	s := New(fullyAssoc("C", 6, 8))
	if s.Misses("X") != 0 || s.MissRate("X") != 0 || s.MissesByRef("X") != nil {
		t.Error("unknown level should report zeros")
	}
}

// TestFullyAssocSimMatchesReuseDistance is the end-to-end invariant from
// DESIGN.md: for any trace, misses of a fully-associative LRU simulation
// equal the reuse-distance engine's exact threshold counts at the same
// block size and capacity.
func TestFullyAssocSimMatchesReuseDistance(t *testing.T) {
	f := func(seed int64) bool {
		const (
			lineBits = 6
			capacity = 16
		)
		sim := New(fullyAssoc("C", lineBits, capacity))
		eng := reusedist.New(reusedist.Config{BlockBits: lineBits, Thresholds: []uint64{capacity}})
		rng := rand.New(rand.NewSource(seed))
		m := trace.Multi{sim, eng}
		m.EnterScope(0)
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(64)) * 64
			if rng.Intn(4) == 0 {
				addr = uint64(rng.Intn(4096)) * 64
			}
			m.Access(trace.RefID(rng.Intn(4)), addr, 8, rng.Intn(2) == 0)
		}
		m.ExitScope(0)
		return sim.Misses("C") == eng.TotalMissAt(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSetAssocSimVsProbabilisticModel checks that the paper's binomial
// model tracks simulated set-associative misses on a random workload to
// within a modest relative error.
func TestSetAssocSimVsProbabilisticModel(t *testing.T) {
	level := cache.Level{Name: "L", LineBits: 6, Sets: 64, Assoc: 4}
	h := &cache.Hierarchy{Levels: []cache.Level{level}}
	sim := New(h)
	eng := reusedist.New(reusedist.Config{BlockBits: 6})
	m := trace.Multi{sim, eng}
	rng := rand.New(rand.NewSource(9))
	m.EnterScope(0)
	for i := 0; i < 200000; i++ {
		// Working set ~2x capacity so both hits and misses occur.
		addr := uint64(rng.Intn(512)) * 64
		m.Access(1, addr, 8, false)
	}
	m.ExitScope(0)

	var predicted float64
	for _, rd := range eng.Refs() {
		predicted += float64(rd.Cold)
		for _, p := range rd.Patterns {
			predicted += level.ExpectedMisses(p.Hist)
		}
	}
	simMisses := float64(sim.Misses("L"))
	rel := (predicted - simMisses) / simMisses
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("model %.0f vs sim %.0f: relative error %.2f exceeds 15%%", predicted, simMisses, rel)
	}
}

func BenchmarkSimItanium2(b *testing.B) {
	s := New(cache.Itanium2())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 24))
	}
	s.EnterScope(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(1, addrs[i&0xffff], 8, false)
	}
}
