// Package cachesim is an execution-driven set-associative LRU cache and TLB
// simulator.
//
// The paper validates its reuse-distance predictions against hardware
// counters on an Itanium2; this repository has no Itanium2, so the
// simulator stands in for the machine (see DESIGN.md). Each level is probed
// independently by every access — the same semantics the reuse-distance
// prediction models — and misses are attributed to the reference and the
// innermost active scope, which is what Figures 8 and 11 plot.
package cachesim

import (
	"fmt"

	"reusetool/internal/cache"
	"reusetool/internal/trace"
)

// levelState simulates one set-associative LRU level.
type levelState struct {
	level    cache.Level
	lineBits uint
	setMask  uint64
	assoc    int
	tags     []uint64 // sets*assoc entries
	lastUse  []uint64 // sets*assoc entries; 0 = invalid
	clock    uint64

	accesses uint64
	misses   uint64
	cold     uint64

	missByRef   []uint64
	missByScope []uint64
}

func newLevelState(l cache.Level) *levelState {
	if l.Sets <= 0 || l.Assoc <= 0 {
		panic(fmt.Sprintf("cachesim: invalid geometry %+v", l))
	}
	if l.Sets&(l.Sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: sets must be a power of two, got %d", l.Sets))
	}
	n := l.Sets * l.Assoc
	return &levelState{
		level:    l,
		lineBits: l.LineBits,
		setMask:  uint64(l.Sets - 1),
		assoc:    l.Assoc,
		tags:     make([]uint64, n),
		lastUse:  make([]uint64, n),
	}
}

// access probes the level with one block access and returns whether it
// missed and whether the miss was compulsory-ish (insertion of a
// never-seen tag cannot be distinguished from a re-fetch here, so cold is
// tracked by the caller via a seen-set if needed; we report plain misses).
func (ls *levelState) access(block uint64) bool {
	ls.clock++
	ls.accesses++
	set := block & ls.setMask
	base := int(set) * ls.assoc
	ways := ls.tags[base : base+ls.assoc]
	uses := ls.lastUse[base : base+ls.assoc]
	victim, victimUse := 0, uses[0]
	for i := 0; i < ls.assoc; i++ {
		if uses[i] != 0 && ways[i] == block {
			uses[i] = ls.clock
			return false
		}
		if uses[i] < victimUse {
			victim, victimUse = i, uses[i]
		}
	}
	ls.misses++
	if victimUse == 0 {
		ls.cold++
	}
	ways[victim] = block
	uses[victim] = ls.clock
	return true
}

// Sim drives a set of cache levels from an instrumentation event stream.
// It implements trace.Handler.
type Sim struct {
	levels []*levelState
	stack  []trace.ScopeID
	// Accesses counts memory accesses (not block-expanded).
	Accesses uint64
}

// New builds a simulator for all levels of h.
func New(h *cache.Hierarchy) *Sim {
	s := &Sim{}
	for _, l := range h.Levels {
		s.levels = append(s.levels, newLevelState(l))
	}
	return s
}

// EnterScope implements trace.Handler.
func (s *Sim) EnterScope(sc trace.ScopeID) { s.stack = append(s.stack, sc) }

// ExitScope implements trace.Handler.
func (s *Sim) ExitScope(trace.ScopeID) { s.stack = s.stack[:len(s.stack)-1] }

// Access implements trace.Handler. Accesses spanning multiple blocks of a
// level probe that level once per covered block.
func (s *Sim) Access(ref trace.RefID, addr uint64, size uint32, _ bool) {
	s.Accesses++
	cur := trace.NoScope
	if len(s.stack) > 0 {
		cur = s.stack[len(s.stack)-1]
	}
	for _, ls := range s.levels {
		first := addr >> ls.lineBits
		last := first
		if size > 0 {
			last = (addr + uint64(size) - 1) >> ls.lineBits
		}
		for b := first; b <= last; b++ {
			if ls.access(b) {
				attribute(&ls.missByRef, int(ref))
				if cur != trace.NoScope {
					attribute(&ls.missByScope, int(cur))
				}
			}
		}
	}
}

func attribute(counts *[]uint64, idx int) {
	if idx < 0 {
		return
	}
	for idx >= len(*counts) {
		*counts = append(*counts, 0)
	}
	(*counts)[idx]++
}

func (s *Sim) find(name string) *levelState {
	for _, ls := range s.levels {
		if ls.level.Name == name {
			return ls
		}
	}
	return nil
}

// Misses reports total misses at the named level (0 if unknown).
func (s *Sim) Misses(name string) uint64 {
	if ls := s.find(name); ls != nil {
		return ls.misses
	}
	return 0
}

// ColdMisses reports misses that filled an invalid way at the named level.
func (s *Sim) ColdMisses(name string) uint64 {
	if ls := s.find(name); ls != nil {
		return ls.cold
	}
	return 0
}

// LevelAccesses reports block-granularity probes at the named level.
func (s *Sim) LevelAccesses(name string) uint64 {
	if ls := s.find(name); ls != nil {
		return ls.accesses
	}
	return 0
}

// MissesByRef returns per-reference miss counts at the named level, indexed
// by RefID (references beyond the slice length had zero misses).
func (s *Sim) MissesByRef(name string) []uint64 {
	if ls := s.find(name); ls != nil {
		return ls.missByRef
	}
	return nil
}

// MissesByScope returns per-scope (innermost active scope at miss time)
// miss counts at the named level, indexed by ScopeID.
func (s *Sim) MissesByScope(name string) []uint64 {
	if ls := s.find(name); ls != nil {
		return ls.missByScope
	}
	return nil
}

// MissRate reports misses per access at the named level.
func (s *Sim) MissRate(name string) float64 {
	ls := s.find(name)
	if ls == nil || ls.accesses == 0 {
		return 0
	}
	return float64(ls.misses) / float64(ls.accesses)
}

// Probe is a single-level cache probe for callers that need per-access
// hit/miss outcomes (e.g. the calling-context-tree profiler) rather than
// aggregate counters.
type Probe struct {
	ls *levelState
}

// NewProbe builds a probe for one cache level.
func NewProbe(l cache.Level) *Probe { return &Probe{ls: newLevelState(l)} }

// Access probes with one memory access and reports how many of the
// covered blocks missed.
func (p *Probe) Access(addr uint64, size uint32) int {
	first := addr >> p.ls.lineBits
	last := first
	if size > 0 {
		last = (addr + uint64(size) - 1) >> p.ls.lineBits
	}
	misses := 0
	for b := first; b <= last; b++ {
		if p.ls.access(b) {
			misses++
		}
	}
	return misses
}

// Misses reports the probe's total miss count.
func (p *Probe) Misses() uint64 { return p.ls.misses }
