package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reusetool/internal/server"
	"reusetool/pkg/client"
)

// flakyWorker is a real analysis daemon behind a toggleable front: when
// down, every request answers 502 without reaching the server, which
// looks to the coordinator exactly like a sick node.
type flakyWorker struct {
	srv  *server.Server
	ts   *httptest.Server
	down atomic.Bool
}

func (f *flakyWorker) url() string { return f.ts.URL }

func newWorker(t *testing.T, cfg server.Config) *flakyWorker {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyWorker{srv: s}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			http.Error(w, "node down", http.StatusBadGateway)
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		f.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return f
}

// newCluster stands up n workers and a coordinator with test-fast
// failure detection, returning a typed client aimed at the coordinator.
func newCluster(t *testing.T, n int, wcfg server.Config, ccfg Config) (*Coordinator, []*flakyWorker, *client.Client) {
	t.Helper()
	workers := make([]*flakyWorker, n)
	peers := make([]string, n)
	for i := range workers {
		workers[i] = newWorker(t, wcfg)
		peers[i] = workers[i].url()
	}
	ccfg.Peers = peers
	if ccfg.FailAfter == 0 {
		ccfg.FailAfter = 2
	}
	if ccfg.RetryBase == 0 {
		ccfg.RetryBase = 5 * time.Millisecond
	}
	if ccfg.RetryMax == 0 {
		ccfg.RetryMax = 50 * time.Millisecond
	}
	if ccfg.PollInterval == 0 {
		ccfg.PollInterval = 10 * time.Millisecond
	}
	c, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL, client.WithRetry(client.Retry{Attempts: 2, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}))
	cl.PollInterval = 10 * time.Millisecond
	return c, workers, cl
}

// streamReq builds a distinct small analysis per n so each request has
// its own cache key and shard.
func streamReq(n int64) client.AnalyzeRequest {
	return client.AnalyzeRequest{Workload: "stream", Params: map[string]int64{"N": n}}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCoordinatorColdWarmAndSharding(t *testing.T) {
	c, workers, cl := newCluster(t, 3, server.Config{Workers: 1}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	byURL := map[string]*flakyWorker{}
	for _, w := range workers {
		byURL[w.url()] = w
	}

	const jobs = 6
	nodeOf := map[int64]string{}
	for i := int64(0); i < jobs; i++ {
		req := streamReq(4096 + i)
		job, err := cl.Analyze(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		done, err := cl.Wait(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done.Status != client.JobDone {
			t.Fatalf("job %s: status %s (%s)", job.ID, done.Status, done.Error)
		}
		if done.CacheHit {
			t.Fatalf("job %s: cold run reported a cache hit", job.ID)
		}
		if done.Node == "" || byURL[done.Node] == nil {
			t.Fatalf("job %s: node %q is not a known worker", job.ID, done.Node)
		}
		// The shard function is the content-addressed key: the node must
		// be the ring owner.
		if owner := c.Ring().Owner(done.Key); done.Node != owner {
			t.Fatalf("job %s placed on %s, ring owner is %s", job.ID, done.Node, owner)
		}
		if done.Report == "" || len(done.Result) == 0 {
			t.Fatalf("job %s: missing report/result payload", job.ID)
		}
		nodeOf[i] = done.Node
	}

	// Warm pass: same requests must be cache hits on the same nodes.
	for i := int64(0); i < jobs; i++ {
		job, err := cl.Analyze(ctx, streamReq(4096+i))
		if err != nil {
			t.Fatal(err)
		}
		done, err := cl.Wait(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done.Status != client.JobDone || !done.CacheHit {
			t.Fatalf("warm job %d: status=%s cache_hit=%v", i, done.Status, done.CacheHit)
		}
		if done.Node != nodeOf[i] {
			t.Fatalf("warm job %d landed on %s, cold run used %s", i, done.Node, nodeOf[i])
		}
	}

	if got := c.Metrics().JobsProxied.Load(); got != 2*jobs {
		t.Fatalf("jobs_proxied = %d, want %d", got, 2*jobs)
	}
	nodes, err := cl.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(nodes))
	}
	for _, n := range nodes {
		if !n.Healthy {
			t.Fatalf("node %s unhealthy with no failures injected", n.URL)
		}
	}
}

func TestCoordinatorReroutesWhenWorkerDies(t *testing.T) {
	c, workers, cl := newCluster(t, 3,
		server.Config{Workers: 1, SimulateLatency: 400 * time.Millisecond}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req := streamReq(9001)
	key, err := server.CacheKeyFor(req)
	if err != nil {
		t.Fatal(err)
	}
	owner := c.Ring().Owner(key)
	var ownerWorker *flakyWorker
	for _, w := range workers {
		if w.url() == owner {
			ownerWorker = w
		}
	}
	if ownerWorker == nil {
		t.Fatalf("owner %s not among workers", owner)
	}

	job, err := cl.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Let the job land on the owner, then kill the node mid-run.
	time.Sleep(50 * time.Millisecond)
	ownerWorker.down.Store(true)

	done, err := cl.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != client.JobDone {
		t.Fatalf("rerouted job: status %s (%s)", done.Status, done.Error)
	}
	if done.Node == owner {
		t.Fatalf("job still reports the dead owner %s", owner)
	}
	if done.Rerouted < 1 {
		t.Fatalf("rerouted = %d, want >= 1", done.Rerouted)
	}
	if got := c.Metrics().JobsRerouted.Load(); got < 1 {
		t.Fatalf("jobs_rerouted_total = %d, want >= 1", got)
	}
	if c.Ring().Has(owner) {
		t.Fatal("dead owner still in the ring")
	}
}

func TestCoordinatorProberEvictsAndRejoins(t *testing.T) {
	c, workers, cl := newCluster(t, 3, server.Config{Workers: 1}, Config{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c.Start(ctx)

	victim := workers[0]
	victim.down.Store(true)
	waitFor(t, 5*time.Second, "victim eviction", func() bool {
		return !c.Ring().Has(victim.url())
	})
	if c.Metrics().NodesEvicted.Load() < 1 {
		t.Fatal("eviction not counted")
	}

	// While the victim is out, every submission must land elsewhere.
	for i := int64(0); i < 4; i++ {
		job, err := cl.Analyze(ctx, streamReq(7000+i))
		if err != nil {
			t.Fatal(err)
		}
		done, err := cl.Wait(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done.Status != client.JobDone || done.Node == victim.url() {
			t.Fatalf("job %d: status=%s node=%s (victim=%s)", i, done.Status, done.Node, victim.url())
		}
	}

	victim.down.Store(false)
	waitFor(t, 5*time.Second, "victim rejoin", func() bool {
		return c.Ring().Has(victim.url())
	})
	if c.Metrics().NodesRejoined.Load() < 1 {
		t.Fatal("rejoin not counted")
	}
	nodes, err := cl.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if !n.Healthy {
			t.Fatalf("node %s still unhealthy after rejoin", n.URL)
		}
	}
}

// TestCoordinatorNoJobLostOrDuplicatedUnderChurn is the reroute safety
// property: with workers flapping one at a time while a batch is in
// flight, every accepted job must reach done exactly once.
func TestCoordinatorNoJobLostOrDuplicatedUnderChurn(t *testing.T) {
	c, workers, cl := newCluster(t, 3,
		server.Config{Workers: 1, SimulateLatency: 40 * time.Millisecond}, Config{
			SubmitRounds:  8,
			ProbeInterval: 25 * time.Millisecond,
			ProbeTimeout:  200 * time.Millisecond,
		})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// The prober re-admits flapped workers; without it the ring only
	// ever shrinks.
	c.Start(ctx)

	const jobs = 12
	ids := make([]string, 0, jobs)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := int64(0); i < jobs; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			job, err := cl.Analyze(ctx, streamReq(5000+i))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			mu.Lock()
			ids = append(ids, job.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Flap each worker once, one at a time, while the batch drains.
	for _, w := range workers {
		w.down.Store(true)
		time.Sleep(80 * time.Millisecond)
		w.down.Store(false)
		time.Sleep(40 * time.Millisecond)
	}

	seen := map[string]bool{}
	for _, id := range ids {
		done, err := cl.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if done.Status != client.JobDone {
			t.Fatalf("job %s lost: status %s (%s), rerouted %d", id, done.Status, done.Error, done.Rerouted)
		}
		if seen[id] {
			t.Fatalf("job %s reported twice", id)
		}
		seen[id] = true
	}

	// The coordinator's registry must hold exactly the accepted batch.
	list, err := cl.Jobs(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != jobs {
		t.Fatalf("job list has %d entries, want %d", len(list), jobs)
	}
	unique := map[string]bool{}
	for _, j := range list {
		if unique[j.ID] {
			t.Fatalf("duplicate job %s in list", j.ID)
		}
		unique[j.ID] = true
		if j.Status != client.JobDone {
			t.Fatalf("job %s in list: status %s", j.ID, j.Status)
		}
	}
}

func TestCoordinatorCancelPropagates(t *testing.T) {
	_, _, cl := newCluster(t, 1,
		server.Config{Workers: 1, SimulateLatency: 5 * time.Second}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := cl.Analyze(ctx, streamReq(8888))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "job to start", func() bool {
		j, err := cl.Job(ctx, job.ID)
		return err == nil && j.Status == client.JobRunning
	})
	if _, err := cl.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	done, err := cl.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != client.JobCanceled {
		t.Fatalf("status %s after cancel, want canceled", done.Status)
	}
	// Canceling a finished job is a typed conflict.
	_, err = cl.Cancel(ctx, job.ID)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeConflict {
		t.Fatalf("second cancel: %v, want conflict", err)
	}
}

func TestCoordinatorErrorEnvelopes(t *testing.T) {
	c, _, cl := newCluster(t, 2, server.Config{Workers: 1}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Invalid request: rejected at the coordinator, no worker involved.
	_, err := cl.Analyze(ctx, client.AnalyzeRequest{Workload: "no-such-workload"})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeInvalidRequest {
		t.Fatalf("bad workload: %v, want invalid_request", err)
	}

	_, err = cl.Job(ctx, "c-999999")
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeNotFound {
		t.Fatalf("unknown job: %v, want not_found", err)
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" || h.NodesHealthy != 2 || h.APIVersion != client.APIVersion {
		t.Fatalf("health = %+v", h)
	}

	// Drain: intake refused with the typed draining code.
	dctx, dcancel := context.WithTimeout(ctx, 5*time.Second)
	defer dcancel()
	if err := c.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Analyze(ctx, streamReq(1))
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeDraining {
		t.Fatalf("analyze while draining: %v, want draining", err)
	}
}

func TestCoordinatorMetricsExposition(t *testing.T) {
	_, _, cl := newCluster(t, 2, server.Config{Workers: 1}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	job, err := cl.Analyze(ctx, streamReq(6006))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(cl.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"reusetoold_cluster_jobs_proxied_total 1",
		"reusetoold_cluster_nodes_healthy 2",
		"reusetoold_cluster_node_inflight{node=",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
