package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real cache keys: long hex-ish strings.
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func TestRingDistributionUniformity(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(20000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	// Perfectly uniform would be 25% per node; with 64 vnodes the
	// spread should stay within [12%, 45%] — loose enough to be stable,
	// tight enough to catch a broken hash or vnode layout.
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.12 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys, outside [12%%,45%%]", n, share*100)
		}
	}
	if len(counts) != len(nodes) {
		t.Fatalf("only %d of %d nodes own keys", len(counts), len(nodes))
	}
}

func TestRingMinimalKeyMovementOnRemove(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(5000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	victim := nodes[1]
	r.Remove(victim)
	for _, k := range keys {
		owner := r.Owner(k)
		if owner == victim {
			t.Fatalf("removed node still owns %s", k)
		}
		// Consistency property: only the removed node's keys may move.
		if before[k] != victim && owner != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner stayed in the ring",
				k, before[k], owner)
		}
	}

	// Re-adding restores the exact original assignment.
	r.Add(victim)
	for _, k := range keys {
		if owner := r.Owner(k); owner != before[k] {
			t.Fatalf("key %s: owner %s after rejoin, want %s", k, owner, before[k])
		}
	}
}

func TestRingMinimalKeyMovementOnAdd(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"} {
		r.Add(n)
	}
	keys := ringKeys(5000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("http://e:1")
	moved := 0
	for _, k := range keys {
		owner := r.Owner(k)
		if owner == before[k] {
			continue
		}
		// Keys may only move TO the new node, never between old nodes.
		if owner != "http://e:1" {
			t.Fatalf("key %s moved %s -> %s, not to the new node", k, before[k], owner)
		}
		moved++
	}
	// The new node should take roughly 1/5 of the space; allow [8%, 35%].
	frac := float64(moved) / float64(len(keys))
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("adding a 5th node moved %.1f%% of keys, outside [8%%,35%%]", frac*100)
	}
}

func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	a, b := NewRing(32), NewRing(32)
	nodes := []string{"http://w1:9", "http://w2:9", "http://w3:9"}
	for _, n := range nodes {
		a.Add(n)
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: rings disagree (%s vs %s)", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	succ := r.Successors("somekey", 10)
	if len(succ) != len(nodes) {
		t.Fatalf("successors = %v, want all %d distinct nodes", succ, len(nodes))
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate node %s in successors %v", s, succ)
		}
		seen[s] = true
	}
	if succ[0] != r.Owner("somekey") {
		t.Fatalf("first successor %s != owner %s", succ[0], r.Owner("somekey"))
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if owner := r.Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	r.Add("http://a:1")
	r.Add("http://a:1") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("len = %d after duplicate add, want 1", r.Len())
	}
	r.Remove("http://missing:1") // absent remove is a no-op
	if !r.Has("http://a:1") || r.Owner("k") != "http://a:1" {
		t.Fatal("single-node ring must own every key")
	}
	r.Remove("http://a:1")
	if r.Len() != 0 || r.Owner("k") != "" {
		t.Fatal("ring not empty after removing the only node")
	}
}
