package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"reusetool/internal/predict"
	"reusetool/internal/server"
	"reusetool/pkg/client"
)

// Cross-input scaling models on the cluster: POST /v1/fit schedules the
// training analyses as related jobs across the ring (each lands on its
// own cache-key owner, warming the fleet), collects their cache entries
// onto the model key's ring owner, then places the fit job there — so
// the fitting worker serves every training input from its warm cache.
// POST /v1/predict proxies synchronously to the model's ring owner.

func (c *Coordinator) handleFit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, client.CodeTooLarge, "body exceeds %d bytes", c.cfg.MaxBodyBytes)
		return
	}
	var req client.FitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "decode request: %v", err)
		return
	}
	// The model key is the shard address AND the early soundness gate:
	// unsound sampling never reaches a worker.
	key, err := server.ModelKeyFor(req)
	if err != nil {
		code := client.CodeInvalidRequest
		if errors.Is(err, predict.ErrUnsoundTraining) {
			code = client.CodeUnsoundTrainingInput
		}
		writeError(w, http.StatusBadRequest, code, "%v", err)
		return
	}
	trainReqs, err := server.TrainingRequests(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "%v", err)
		return
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, client.CodeDraining, "coordinator is draining")
		return
	}
	if c.ring.Len() == 0 {
		c.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, client.CodeUnavailable, "no healthy workers")
		return
	}
	c.nextID++
	id := fmt.Sprintf("c-%06d", c.nextID)
	j := &proxyJob{
		id:     id,
		key:    key,
		fitReq: &req,
		done:   make(chan struct{}),
		doc: client.Job{
			APIVersion: client.APIVersion,
			ID:         id,
			Status:     client.JobQueued,
			Key:        key,
			Submitted:  time.Now().UTC().Format(time.RFC3339Nano),
		},
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.watchers.Add(1)
	c.mu.Unlock()

	c.metrics.FitsProxied.Add(1)
	go c.watchFit(j, trainReqs)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// watchFit drives one fit end to end: schedule the training analyses as
// related jobs across the ring, gather their cache entries onto the fit
// owner, then hand over to the ordinary watch loop to place and track
// the fit job itself. Like watch, it roots its own contexts — the fit
// must outlive the submission request.
//
//reuse:ctx-root
func (c *Coordinator) watchFit(j *proxyJob, trainReqs []client.AnalyzeRequest) {
	children := make([]*proxyJob, 0, len(trainReqs))
	for i, tr := range trainReqs {
		key, err := server.CacheKeyFor(tr)
		if err != nil {
			c.watchers.Done()
			defer close(j.done)
			c.finishLocal(j, client.JobFailed, fmt.Sprintf("training run %d: %v", i, err))
			return
		}
		child := &proxyJob{
			id:   fmt.Sprintf("%s-t%d", j.id, i),
			key:  key,
			req:  tr,
			done: make(chan struct{}),
			doc: client.Job{
				APIVersion: client.APIVersion,
				ID:         fmt.Sprintf("%s-t%d", j.id, i),
				Status:     client.JobQueued,
				Key:        key,
				Submitted:  time.Now().UTC().Format(time.RFC3339Nano),
			},
		}
		c.mu.Lock()
		c.jobs[child.id] = child
		c.order = append(c.order, child.id)
		c.watchers.Add(1)
		c.mu.Unlock()
		c.metrics.TrainingJobsScheduled.Add(1)
		children = append(children, child)
		go c.watch(child)
	}

	for _, child := range children {
		<-child.done
	}
	for i, child := range children {
		if doc := child.snapshot(); doc.Status != client.JobDone {
			c.watchers.Done()
			defer close(j.done)
			c.finishLocal(j, client.JobFailed,
				fmt.Sprintf("training run %d (%s): %s: %s", i, child.id, doc.Status, doc.Error))
			return
		}
	}
	c.seedFitOwner(j.key, children)

	// The training inputs are in place; place and track the fit job like
	// any other. watch owns watchers.Done and close(j.done).
	c.watch(j)
}

// seedFitOwner copies each training run's cache entry from the node
// that ran it to the model key's ring owner, so the fit job — routed by
// that same key — finds every training input warm. Best-effort: a
// failed copy only costs the owner a re-run of one small input.
func (c *Coordinator) seedFitOwner(modelKey string, children []*proxyJob) {
	owners := c.ring.Successors(modelKey, 1)
	if len(owners) == 0 {
		return
	}
	owner := owners[0]
	for _, child := range children {
		doc := child.snapshot()
		if doc.Node == "" || doc.Node == owner {
			continue
		}
		entry, err := c.fetchCacheEntry(doc.Node, doc.Key)
		if err != nil {
			continue
		}
		_ = c.pushCacheEntry(owner, doc.Key, entry)
	}
}

// fetchCacheEntry GETs one gob cache entry from a worker's peer
// protocol. Runs on the watcher goroutine; contexts root here.
//
//reuse:ctx-root
func (c *Coordinator) fetchCacheEntry(node, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: cache get %s from %s: status %d", key, node, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxEntryTransferBytes))
}

// maxEntryTransferBytes bounds one cache-entry copy between workers.
const maxEntryTransferBytes int64 = 256 << 20

// pushCacheEntry PUTs a gob cache entry onto a worker. Runs on the
// watcher goroutine; contexts root here.
//
//reuse:ctx-root
func (c *Coordinator) pushCacheEntry(node, key string, entry []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, node+"/v1/cache/"+key, bytes.NewReader(entry))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cluster: cache put %s to %s: status %d", key, node, resp.StatusCode)
	}
	return nil
}

// handlePredict proxies a what-if query synchronously to the model
// key's ring owner, walking successors on transport failure. The reply
// is the worker's own — microsecond-latency from its cached model.
func (c *Coordinator) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, client.CodeTooLarge, "body exceeds %d bytes", c.cfg.MaxBodyBytes)
		return
	}
	var req client.PredictRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "decode request: %v", err)
		return
	}
	key := req.Model
	if key == "" {
		key, err = server.ModelKeyFor(server.FitSpec(req))
		if err != nil {
			code := client.CodeInvalidRequest
			if errors.Is(err, predict.ErrUnsoundTraining) {
				code = client.CodeUnsoundTrainingInput
			}
			writeError(w, http.StatusBadRequest, code, "%v", err)
			return
		}
	}

	c.metrics.PredictsProxied.Add(1)
	var lastErr error
	for _, url := range c.ring.Successors(key, len(c.cfg.Peers)) {
		ns, ok := c.healthyNode(url)
		if !ok {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
		resp, err := ns.cli.Predict(ctx, req)
		cancel()
		if err == nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		lastErr = err
		var apiErr *client.Error
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			// The worker answered conclusively (no model, bad binding):
			// forward its verdict rather than asking another node.
			writeError(w, apiErr.Status, apiErr.Code, "%s", apiErr.Message)
			return
		}
		c.noteDead(ns, true)
	}
	if lastErr != nil {
		writeError(w, http.StatusServiceUnavailable, client.CodeUnavailable, "no worker answered: %v", lastErr)
		return
	}
	writeError(w, http.StatusServiceUnavailable, client.CodeUnavailable, "no healthy workers")
}
