package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Metrics is the coordinator's counter registry, rendered on
// GET /metrics alongside per-node gauges sampled at request time.
type Metrics struct {
	start time.Time

	// JobsProxied counts analyze submissions accepted and forwarded to a
	// worker.
	JobsProxied atomic.Uint64
	// JobsRerouted counts jobs moved to another worker after their node
	// failed.
	JobsRerouted atomic.Uint64
	// SubmitRetries counts submit attempts beyond the first, across all
	// jobs (retries on the same node plus successor fallbacks).
	SubmitRetries atomic.Uint64
	// ProbeFailures counts failed health probes.
	ProbeFailures atomic.Uint64
	// NodesEvicted counts ring evictions after consecutive probe
	// failures; NodesRejoined counts evicted nodes re-admitted after a
	// successful probe.
	NodesEvicted  atomic.Uint64
	NodesRejoined atomic.Uint64

	// FitsProxied counts /v1/fit submissions accepted; each schedules
	// TrainingJobsScheduled related analyze jobs across the ring before
	// the fit itself is placed. PredictsProxied counts synchronous
	// /v1/predict queries forwarded to the model's ring owner.
	FitsProxied           atomic.Uint64
	PredictsProxied       atomic.Uint64
	TrainingJobsScheduled atomic.Uint64
}

// NewMetrics starts the uptime clock.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// NodeGauge is one worker's point-in-time state for the exposition.
type NodeGauge struct {
	Node     string
	Healthy  bool
	Inflight int
}

// WriteText renders the registry in the Prometheus exposition format.
// Per-node series are emitted in sorted node order so consecutive
// scrapes of an unchanged cluster are byte-identical.
func (m *Metrics) WriteText(w io.Writer, nodes []NodeGauge) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP reusetoold_cluster_uptime_seconds Seconds since the coordinator started.\n"+
		"# TYPE reusetoold_cluster_uptime_seconds gauge\nreusetoold_cluster_uptime_seconds %g\n",
		time.Since(m.start).Seconds())
	counter("reusetoold_cluster_jobs_proxied_total", "Jobs accepted and forwarded to a worker.", m.JobsProxied.Load())
	counter("reusetoold_cluster_jobs_rerouted_total", "Jobs moved to another worker after a node failure.", m.JobsRerouted.Load())
	counter("reusetoold_cluster_submit_retries_total", "Submit attempts beyond the first.", m.SubmitRetries.Load())
	counter("reusetoold_cluster_probe_failures_total", "Failed worker health probes.", m.ProbeFailures.Load())
	counter("reusetoold_cluster_nodes_evicted_total", "Workers evicted from the ring after consecutive probe failures.", m.NodesEvicted.Load())
	counter("reusetoold_cluster_nodes_rejoined_total", "Evicted workers re-admitted after a successful probe.", m.NodesRejoined.Load())
	counter("reusetoold_cluster_fits_proxied_total", "Model-fit submissions accepted and scheduled.", m.FitsProxied.Load())
	counter("reusetoold_cluster_predicts_proxied_total", "What-if predictions forwarded to a worker.", m.PredictsProxied.Load())
	counter("reusetoold_cluster_training_jobs_total", "Training analyses scheduled as related jobs for fits.", m.TrainingJobsScheduled.Load())

	sorted := append([]NodeGauge(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	healthy := 0
	for _, n := range sorted {
		if n.Healthy {
			healthy++
		}
	}
	fmt.Fprintf(w, "# HELP reusetoold_cluster_nodes_healthy Workers currently in the ring.\n"+
		"# TYPE reusetoold_cluster_nodes_healthy gauge\nreusetoold_cluster_nodes_healthy %d\n", healthy)
	fmt.Fprintf(w, "# HELP reusetoold_cluster_node_inflight Jobs this coordinator has in flight per worker.\n"+
		"# TYPE reusetoold_cluster_node_inflight gauge\n")
	for _, n := range sorted {
		fmt.Fprintf(w, "reusetoold_cluster_node_inflight{node=%q} %d\n", n.Node, n.Inflight)
	}
}
