package cluster

import (
	"context"
	"testing"

	"reusetool/internal/server"
	"reusetool/pkg/client"
)

// TestCoordinatorServesCheck: the coordinator mounts the same
// POST /v1/check surface as its workers and answers synchronously,
// without scheduling a job or touching the ring.
func TestCoordinatorServesCheck(t *testing.T) {
	_, _, cl := newCluster(t, 1, server.Config{}, Config{})
	resp, err := cl.Check(context.Background(), client.CheckRequest{Workload: "fig1a"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Program != "fig1a" || resp.Findings == 0 {
		t.Fatalf("coordinator check = %+v", resp)
	}
	var hit bool
	for _, d := range resp.Diagnostics {
		if d.Code == "layout-mismatch" && d.Legality == "legal" {
			hit = true
		}
	}
	if !hit {
		t.Errorf("missing legality-checked layout-mismatch: %+v", resp.Diagnostics)
	}
}
