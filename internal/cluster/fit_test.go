package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"reusetool/internal/server"
	"reusetool/pkg/client"
)

func fig2FitReq() client.FitRequest {
	return client.FitRequest{
		Workload:    "fig2",
		TrainParams: []map[string]int64{{"N": 64}, {"N": 96}, {"N": 128}},
	}
}

// TestCoordinatorFitSchedulesTrainingAcrossRing: a /v1/fit submission
// fans the training analyses out as related jobs, seeds the fit owner's
// cache, and completes the fit; /v1/predict then answers from the
// cached model through the coordinator.
func TestCoordinatorFitSchedulesTrainingAcrossRing(t *testing.T) {
	c, _, cl := newCluster(t, 2, server.Config{Workers: 2}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	job, err := cl.Fit(ctx, fig2FitReq())
	if err != nil {
		t.Fatal(err)
	}
	done, err := cl.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != client.JobDone {
		t.Fatalf("fit job: %s (%s)", done.Status, done.Error)
	}
	if owner := c.Ring().Owner(done.Key); done.Node != owner {
		t.Fatalf("fit placed on %s, model key's ring owner is %s", done.Node, owner)
	}

	// The three training runs are registered as related jobs under the
	// parent's ID, each terminal and sharded by its own cache key.
	list, err := cl.Jobs(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	related := 0
	for _, j := range list {
		if !strings.HasPrefix(j.ID, job.ID+"-t") {
			continue
		}
		related++
		if j.Status != client.JobDone {
			t.Fatalf("training job %s: %s (%s)", j.ID, j.Status, j.Error)
		}
		if owner := c.Ring().Owner(j.Key); j.Node != owner {
			t.Fatalf("training job %s on %s, ring owner is %s", j.ID, j.Node, owner)
		}
	}
	if related != 3 {
		t.Fatalf("found %d related training jobs, want 3", related)
	}
	if got := c.Metrics().TrainingJobsScheduled.Load(); got != 3 {
		t.Fatalf("training_jobs_total = %d, want 3", got)
	}
	if got := c.Metrics().FitsProxied.Load(); got != 1 {
		t.Fatalf("fits_proxied = %d, want 1", got)
	}

	// Predict a 16x input through the coordinator: proxied to the model
	// owner, answered from the cached model.
	resp, err := cl.Predict(ctx, client.PredictRequest{
		Workload:    "fig2",
		TrainParams: fig2FitReq().TrainParams,
		Params:      map[string]int64{"N": 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != done.Key {
		t.Fatalf("predict model %s, fit key %s", resp.Model, done.Key)
	}
	if len(resp.Levels) == 0 || resp.ElapsedUS <= 0 {
		t.Fatalf("predict response incomplete: %+v", resp)
	}
	if got := c.Metrics().PredictsProxied.Load(); got != 1 {
		t.Fatalf("predicts_proxied = %d, want 1", got)
	}

	// Refit: the model is cached on its owner, so the fit job completes
	// as a cache hit without re-scheduling training jobs.
	job2, err := cl.Fit(ctx, fig2FitReq())
	if err != nil {
		t.Fatal(err)
	}
	done2, err := cl.Wait(ctx, job2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done2.Status != client.JobDone || !done2.CacheHit {
		t.Fatalf("warm refit: status=%s cache_hit=%v", done2.Status, done2.CacheHit)
	}
}

// TestCoordinatorFitRejectsUnsoundSampling is the cluster-surface
// contract: unsound sampling never reaches a worker and fails with the
// typed code.
func TestCoordinatorFitRejectsUnsoundSampling(t *testing.T) {
	_, _, cl := newCluster(t, 1, server.Config{Workers: 1}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	req := fig2FitReq()
	req.SampleRate = 8
	_, err := cl.Fit(ctx, req)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeUnsoundTrainingInput {
		t.Fatalf("fit with R=8: %v, want %s", err, client.CodeUnsoundTrainingInput)
	}

	req = fig2FitReq()
	req.SampleRate = 1
	req.SampleMaxBlocks = 256
	if _, err := cl.Fit(ctx, req); !errors.As(err, &apiErr) || apiErr.Code != client.CodeUnsoundTrainingInput {
		t.Fatalf("fit with adaptive sampling: %v, want %s", err, client.CodeUnsoundTrainingInput)
	}

	// Predict against a model that was never fitted: the worker's typed
	// not_found is forwarded verbatim, not retried around the ring.
	_, err = cl.Predict(ctx, client.PredictRequest{
		Workload:    "fig2",
		TrainParams: fig2FitReq().TrainParams,
		Params:      map[string]int64{"N": 512},
	})
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeNotFound {
		t.Fatalf("predict without model: %v, want not_found", err)
	}
}
