package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"reusetool/internal/server"
	"reusetool/pkg/client"
)

// Config shapes a Coordinator.
type Config struct {
	// Peers are the worker daemon base URLs (e.g. "http://127.0.0.1:8375").
	Peers []string
	// VNodes is the consistent-hash virtual-node count per worker
	// (default DefaultVNodes).
	VNodes int
	// ProbeInterval paces the health prober (default 2s); ProbeTimeout
	// bounds one probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter is the consecutive probe or poll failures before a node
	// is evicted from the ring (default 3).
	FailAfter int
	// SubmitRounds bounds how many passes over the healthy preference
	// list a job makes before failing as unavailable (default 3).
	SubmitRounds int
	// RetryBase/RetryMax shape the jittered backoff between failed
	// submit attempts (defaults 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// PollInterval paces job polling on the workers (default 50ms).
	PollInterval time.Duration
	// MaxBodyBytes bounds analyze request bodies (default 16 MiB).
	MaxBodyBytes int64
	// HTTPClient substitutes the transport used for all worker traffic
	// (default a fresh http.Client).
	HTTPClient *http.Client
}

func (cfg *Config) fill() {
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.SubmitRounds <= 0 {
		cfg.SubmitRounds = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
}

// nodeState is one worker's bookkeeping. All mutable fields are
// guarded by the Coordinator's mu.
type nodeState struct {
	url string
	cli *client.Client

	healthy  bool
	failures int
	inflight int
}

// proxyJob is one analysis the coordinator owns end to end: the client
// talks only to the coordinator (by the coordinator-minted ID), while
// a dedicated watcher goroutine drives the job on whichever worker the
// ring assigns, re-routing when that worker dies.
type proxyJob struct {
	id  string
	key string
	req client.AnalyzeRequest

	// fitReq, when set, marks this as a model-fit job: placeJob submits
	// it via POST /v1/fit instead of /v1/analyze, and req is unused.
	fitReq *client.FitRequest

	// mu guards the live state below.
	mu       sync.Mutex
	doc      client.Job // guarded by mu
	node     string     // guarded by mu
	remoteID string     // guarded by mu
	canceled bool       // guarded by mu

	done chan struct{}
}

// snapshot copies the job document under the lock.
func (j *proxyJob) snapshot() client.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doc
}

func (j *proxyJob) isCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// Coordinator fronts a fleet of worker daemons with the same v1 API a
// single daemon serves, plus GET /v1/nodes. Jobs are sharded by their
// content-addressed cache key over a consistent-hash ring, so repeat
// submissions of the same analysis reach the same worker and its warm
// cache; a health prober evicts dead workers and the per-job watchers
// re-route their jobs to the ring successor, so killing a worker loses
// no accepted job.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	metrics *Metrics
	mux     *http.ServeMux

	// mu guards the node table and job registry below.
	mu       sync.Mutex
	nodes    map[string]*nodeState // guarded by mu
	jobs     map[string]*proxyJob  // guarded by mu
	order    []string              // guarded by mu
	nextID   int                   // guarded by mu
	draining bool                  // guarded by mu

	watchers sync.WaitGroup
}

// New builds a coordinator over cfg.Peers. All peers start healthy and
// in the ring — the prober (Start) and the per-job watchers demote
// them on evidence.
func New(cfg Config) (*Coordinator, error) {
	cfg.fill()
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one peer")
	}
	nodes := map[string]*nodeState{}
	ring := NewRing(cfg.VNodes)
	for _, p := range cfg.Peers {
		ns := &nodeState{
			url: p,
			cli: client.New(p,
				client.WithHTTPClient(cfg.HTTPClient),
				client.WithRetry(client.Retry{Attempts: 2, Base: cfg.RetryBase, Max: cfg.RetryMax})),
			healthy: true,
		}
		ns.url = ns.cli.BaseURL()
		if _, dup := nodes[ns.url]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %s", p)
		}
		nodes[ns.url] = ns
		ring.Add(ns.url)
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    ring,
		metrics: NewMetrics(),
		nodes:   nodes,
		jobs:    map[string]*proxyJob{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", c.handleAnalyze)
	// Checks are stateless and cheap: the coordinator runs them in
	// place rather than proxying, with the same handler workers mount.
	mux.HandleFunc("POST /v1/check", server.CheckHandler(cfg.MaxBodyBytes))
	mux.HandleFunc("POST /v1/fit", c.handleFit)
	mux.HandleFunc("POST /v1/predict", c.handlePredict)
	mux.HandleFunc("GET /v1/jobs", c.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJobCancel)
	mux.HandleFunc("GET /v1/nodes", c.handleNodes)
	mux.HandleFunc("GET /v1/health", c.handleHealth)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux = mux
	return c, nil
}

// Handler returns the HTTP handler tree.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Metrics exposes the counter registry.
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Ring exposes the hash ring (for tests and shard inspection).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Start launches the health prober; it stops when ctx is canceled.
func (c *Coordinator) Start(ctx context.Context) {
	go c.probeLoop(ctx)
}

// Drain stops job intake and waits for every in-flight proxied job to
// reach a terminal state, bounded by ctx.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.watchers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain: %w", ctx.Err())
	}
}

// probeLoop probes every configured peer each interval, evicting after
// FailAfter consecutive failures and re-admitting on the first success.
func (c *Coordinator) probeLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, ns := range c.nodeList() {
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			h, err := ns.cli.Health(pctx)
			cancel()
			if err == nil && h.Status == "ok" {
				c.noteAlive(ns)
			} else {
				c.metrics.ProbeFailures.Add(1)
				c.noteDead(ns, false)
			}
		}
	}
}

// nodeList snapshots the node table in sorted URL order.
func (c *Coordinator) nodeList() []*nodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*nodeState, 0, len(c.nodes))
	for _, ns := range c.nodes {
		out = append(out, ns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].url < out[j].url })
	return out
}

// noteAlive resets the failure count and re-admits an evicted node.
func (c *Coordinator) noteAlive(ns *nodeState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns.failures = 0
	if !ns.healthy {
		ns.healthy = true
		c.ring.Add(ns.url)
		c.metrics.NodesRejoined.Add(1)
	}
}

// noteDead records one failure; after FailAfter consecutive failures —
// or immediately when force is set (a watcher saw the node drop
// mid-job) — the node leaves the ring.
func (c *Coordinator) noteDead(ns *nodeState, force bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns.failures++
	if !ns.healthy {
		return
	}
	if force || ns.failures >= c.cfg.FailAfter {
		ns.healthy = false
		c.ring.Remove(ns.url)
		c.metrics.NodesEvicted.Add(1)
	}
}

// healthyNode returns the node state if url is currently in the ring.
func (c *Coordinator) healthyNode(url string) (*nodeState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.nodes[url]
	if !ok || !ns.healthy {
		return nil, false
	}
	return ns, true
}

func (c *Coordinator) addInflight(ns *nodeState, d int) {
	c.mu.Lock()
	ns.inflight += d
	c.mu.Unlock()
}

// backoff returns the jittered exponential delay before retry attempt
// (1-based): base*2^(attempt-1) capped at max, minus up to half.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << (attempt - 1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	return d - time.Duration(rand.Int63n(int64(d)/2+1))
}

// watch drives one proxied job to completion: submit to the ring owner
// (walking successors on failure), poll until terminal, and re-route
// to the next owner if the worker dies mid-job. It owns j.doc — the
// HTTP handlers only read snapshots.
//
// The watcher deliberately roots its own contexts rather than using
// any request context: the job must outlive the submission request.
//
//reuse:ctx-root
func (c *Coordinator) watch(j *proxyJob) {
	defer c.watchers.Done()
	defer close(j.done)
	rerouted := -1 // first placement is not a reroute
	for round := 0; round < c.cfg.SubmitRounds; round++ {
		if j.isCanceled() {
			c.finishLocal(j, client.JobCanceled, "canceled before placement")
			return
		}
		ns, doc := c.placeJob(j)
		if ns == nil {
			if j.snapshot().Status.Terminal() {
				return
			}
			if c.sleepBackoff(round + 1) {
				continue
			}
			break
		}
		rerouted++
		if rerouted > 0 {
			c.metrics.JobsRerouted.Add(1)
		}
		round = 0 // a successful placement resets the failure budget
		c.updateDoc(j, ns.url, rerouted, doc)
		if doc.Status.Terminal() {
			c.addInflight(ns, -1)
			return
		}
		if c.pollUntilDone(j, ns, rerouted) {
			return
		}
		// The worker dropped mid-job: evict it and go place the job on
		// the ring successor.
		c.noteDead(ns, true)
	}
	c.finishLocal(j, client.JobFailed, "no healthy worker accepted the job")
}

// sleepBackoff pauses between placement rounds; false means give up
// (final round).
func (c *Coordinator) sleepBackoff(attempt int) bool {
	if attempt >= c.cfg.SubmitRounds {
		return false
	}
	time.Sleep(c.backoff(attempt))
	return true
}

// placeJob walks the ring preference list for the job's key and
// submits to the first worker that accepts. Non-temporary API
// rejections (a request that is invalid everywhere) finish the job
// immediately; transport failures evict and continue down the list.
// Runs on the watcher goroutine, so its contexts are rooted here.
//
//reuse:ctx-root
func (c *Coordinator) placeJob(j *proxyJob) (*nodeState, *client.Job) {
	prefs := c.ring.Successors(j.key, len(c.cfg.Peers))
	for i, url := range prefs {
		ns, ok := c.healthyNode(url)
		if !ok {
			continue
		}
		if i > 0 {
			c.metrics.SubmitRetries.Add(1)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		var doc *client.Job
		var err error
		if j.fitReq != nil {
			doc, err = ns.cli.Fit(ctx, *j.fitReq)
		} else {
			doc, err = ns.cli.Analyze(ctx, j.req)
		}
		cancel()
		if err == nil {
			c.addInflight(ns, 1)
			return ns, doc
		}
		var apiErr *client.Error
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			c.finishLocal(j, client.JobFailed, apiErr.Message)
			return nil, nil
		}
		c.noteDead(ns, true)
	}
	return nil, nil
}

// pollUntilDone tracks the job on its worker. True means the job
// reached a terminal state (recorded in j.doc); false means the worker
// stopped answering and the job needs a new home. Runs on the watcher
// goroutine, so its contexts are rooted here.
//
//reuse:ctx-root
func (c *Coordinator) pollUntilDone(j *proxyJob, ns *nodeState, rerouted int) bool {
	defer c.addInflight(ns, -1)
	failures := 0
	cancelSent := false
	for {
		if j.isCanceled() && !cancelSent {
			cancelSent = true
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			_, _ = ns.cli.Cancel(ctx, j.remoteJobID())
			cancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		doc, err := ns.cli.Job(ctx, j.remoteJobID())
		cancel()
		if err != nil {
			var apiErr *client.Error
			if errors.As(err, &apiErr) && apiErr.Status < 500 {
				if apiErr.Code == client.CodeNotFound {
					// The worker restarted and lost the job: reroute.
					return false
				}
				// The worker answered coherently; the job state is just
				// unreadable this instant. Keep polling.
				failures = 0
			} else {
				// Transport failure or a 5xx: the node is dropping.
				failures++
				if _, ok := c.healthyNode(ns.url); !ok || failures >= c.cfg.FailAfter {
					return false
				}
			}
			time.Sleep(c.backoff(min(failures+1, 5)))
			continue
		}
		failures = 0
		c.updateDoc(j, ns.url, rerouted, doc)
		if doc.Status.Terminal() {
			return true
		}
		time.Sleep(c.cfg.PollInterval)
	}
}

// remoteJobID reads the worker-side ID under the job lock.
func (j *proxyJob) remoteJobID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.remoteID
}

// updateDoc folds a worker response into the coordinator's view,
// keeping the coordinator-minted ID and submission stamp.
func (c *Coordinator) updateDoc(j *proxyJob, node string, rerouted int, doc *client.Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	submitted := j.doc.Submitted
	j.doc = *doc
	j.doc.ID = j.id
	j.doc.APIVersion = client.APIVersion
	j.doc.Node = node
	j.doc.Rerouted = rerouted
	j.doc.Submitted = submitted
	j.node = node
	j.remoteID = doc.ID
}

// finishLocal terminates a job without a worker document (placement
// failed or the job was canceled before placement).
func (c *Coordinator) finishLocal(j *proxyJob, status client.JobStatus, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.doc.Status.Terminal() {
		return
	}
	j.doc.Status = status
	j.doc.Finished = time.Now().UTC().Format(time.RFC3339Nano)
	if status == client.JobFailed {
		j.doc.Error = msg
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code client.ErrorCode, format string, args ...any) {
	writeJSON(w, status, client.ErrorEnvelope{
		APIVersion: client.APIVersion,
		Err:        client.ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, client.CodeTooLarge, "body exceeds %d bytes", c.cfg.MaxBodyBytes)
		return
	}
	var req client.AnalyzeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "decode request: %v", err)
		return
	}
	// The coordinator computes the same content-addressed key the
	// workers cache under — the shard function IS the cache key, which
	// is what routes a repeated analysis back to its warm node.
	key, err := server.CacheKeyFor(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "%v", err)
		return
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, client.CodeDraining, "coordinator is draining")
		return
	}
	if c.ring.Len() == 0 {
		c.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, client.CodeUnavailable, "no healthy workers")
		return
	}
	c.nextID++
	id := fmt.Sprintf("c-%06d", c.nextID)
	j := &proxyJob{
		id:   id,
		key:  key,
		req:  req,
		done: make(chan struct{}),
		doc: client.Job{
			APIVersion: client.APIVersion,
			ID:         id,
			Status:     client.JobQueued,
			Key:        key,
			Submitted:  time.Now().UTC().Format(time.RFC3339Nano),
		},
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.watchers.Add(1)
	c.mu.Unlock()

	c.metrics.JobsProxied.Add(1)
	go c.watch(j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (c *Coordinator) job(id string) (*proxyJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, client.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (c *Coordinator) handleJobList(w http.ResponseWriter, r *http.Request) {
	state := client.JobStatus(r.URL.Query().Get("state"))
	switch state {
	case "", client.JobQueued, client.JobRunning, client.JobDone, client.JobFailed, client.JobCanceled:
	default:
		writeError(w, http.StatusBadRequest, client.CodeInvalidRequest, "unknown state %q", state)
		return
	}
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()
	list := client.JobList{APIVersion: client.APIVersion, Jobs: []client.Job{}}
	for _, id := range ids {
		j, ok := c.job(id)
		if !ok {
			continue
		}
		doc := j.snapshot()
		if state != "" && doc.Status != state {
			continue
		}
		doc.Report, doc.Result = "", nil
		list.Jobs = append(list.Jobs, doc)
	}
	writeJSON(w, http.StatusOK, list)
}

func (c *Coordinator) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, client.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	if j.doc.Status.Terminal() {
		j.mu.Unlock()
		writeError(w, http.StatusConflict, client.CodeConflict, "job %s is not cancelable", j.id)
		return
	}
	j.canceled = true
	j.mu.Unlock()
	// The watcher proxies the cancel to whichever worker holds the job
	// and folds the terminal state back in; report the current view.
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, _ *http.Request) {
	list := client.NodeList{APIVersion: client.APIVersion}
	c.mu.Lock()
	for _, ns := range c.nodes {
		list.Nodes = append(list.Nodes, client.Node{
			URL:      ns.url,
			Healthy:  ns.healthy,
			Inflight: ns.inflight,
			Failures: ns.failures,
		})
	}
	c.mu.Unlock()
	sort.Slice(list.Nodes, func(i, j int) bool { return list.Nodes[i].URL < list.Nodes[j].URL })
	writeJSON(w, http.StatusOK, list)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	draining := c.draining
	healthy := 0
	inflight := 0
	queued := 0
	for _, ns := range c.nodes {
		if ns.healthy {
			healthy++
		}
		inflight += ns.inflight
	}
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()
	for _, id := range ids {
		if j, ok := c.job(id); ok && j.snapshot().Status == client.JobQueued {
			queued++
		}
	}
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, client.Health{
		APIVersion:   client.APIVersion,
		Status:       status,
		Role:         "coordinator",
		QueueDepth:   queued,
		Running:      inflight,
		NodesHealthy: healthy,
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var gauges []NodeGauge
	c.mu.Lock()
	for _, ns := range c.nodes {
		gauges = append(gauges, NodeGauge{Node: ns.url, Healthy: ns.healthy, Inflight: ns.inflight})
	}
	c.mu.Unlock()
	c.metrics.WriteText(w, gauges)
}
