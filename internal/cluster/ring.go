// Package cluster implements the distributed analysis tier on top of
// the single-node daemon in internal/server: a coordinator that shards
// jobs across worker daemons by their content-addressed cache key, so
// repeated submissions of the same analysis land on the same node (and
// its warm local cache), plus node health tracking and job re-routing
// when a worker dies.
//
// The sharding function is a consistent-hash ring with virtual nodes:
// adding or removing one worker moves only ~1/N of the key space, which
// preserves most of the fleet's cache locality across membership
// changes — the same property the in-process tiers get from
// content-addressing, lifted to the cluster.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per physical node. 128
// points per node keeps the key-share spread within a few percent of
// uniform for small fleets while the ring stays tiny (128·N points).
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring mapping cache keys to node names.
// The zero value is not usable; construct with NewRing. All methods
// are safe for concurrent use.
type Ring struct {
	vnodes int

	// mu guards the ring points and membership below.
	mu     sync.Mutex
	points []point             // guarded by mu
	member map[string]struct{} // guarded by mu
}

// NewRing builds an empty ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, member: map[string]struct{}{}}
}

// hashString is FNV-1a over s — cheap, stateless, and stable across
// processes, which matters because every coordinator replica must
// shard identically.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a node. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[node]; ok {
		return
	}
	r.member[node] = struct{}{}
	pts := r.points
	for i := 0; i < r.vnodes; i++ {
		pts = append(pts, point{
			hash: hashString(node + "#" + strconv.Itoa(i)),
			node: node,
		})
	}
	// Ties broken by node name so two coordinators with the same
	// membership always agree, whatever the insertion order was.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].node < pts[j].node
	})
	r.points = pts
}

// Remove deletes a node. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[node]; !ok {
		return
	}
	delete(r.member, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of member nodes.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.member)
}

// Nodes returns the member nodes in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	nodes := make([]string, 0, len(r.member))
	for n := range r.member {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Has reports whether node is a member.
func (r *Ring) Has(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.member[node]
	return ok
}

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash. An empty ring returns "".
func (r *Ring) Owner(key string) string {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Successors returns up to n distinct nodes in ring order starting at
// the key's owner — the preference list a coordinator walks when the
// owner is unreachable.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	h := hashString(key)
	pts := r.points
	start := sort.Search(len(pts), func(i int) bool {
		return pts[i].hash >= h
	})
	out := make([]string, 0, n)
	seen := map[string]struct{}{}
	for i := 0; i < len(pts) && len(out) < n; i++ {
		p := pts[(start+i)%len(pts)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
