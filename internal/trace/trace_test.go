package trace

import (
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.EnterScope(1)
	c.EnterScope(2)
	c.Access(1, 100, 8, false)
	c.Access(1, 108, 4, true)
	c.ExitScope(2)
	c.EnterScope(3)
	c.ExitScope(3)
	c.ExitScope(1)

	if c.Enters != 3 || c.Exits != 3 {
		t.Errorf("enters/exits = %d/%d, want 3/3", c.Enters, c.Exits)
	}
	if c.Accesses != 2 || c.Reads != 1 || c.Writes != 1 {
		t.Errorf("accesses = %d r=%d w=%d", c.Accesses, c.Reads, c.Writes)
	}
	if c.Bytes != 12 {
		t.Errorf("bytes = %d, want 12", c.Bytes)
	}
	if c.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", c.MaxDepth)
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b Counter
	m := Multi{&a, &b}
	m.EnterScope(1)
	m.Access(0, 0, 8, false)
	m.ExitScope(1)
	if a.Accesses != 1 || b.Accesses != 1 {
		t.Error("multi did not fan out accesses")
	}
	if a.Enters != 1 || b.Exits != 1 {
		t.Error("multi did not fan out scope events")
	}
}

func TestRecorderReplayEquivalence(t *testing.T) {
	f := func(ops []uint8) bool {
		var rec Recorder
		var direct Counter
		m := Multi{&rec, &direct}
		depth := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				m.EnterScope(ScopeID(op))
				depth++
			case 1:
				if depth > 0 {
					m.ExitScope(ScopeID(op))
					depth--
				}
			case 2:
				m.Access(RefID(op%5), uint64(op)*64, 8, op%2 == 0)
			}
		}
		for depth > 0 {
			m.ExitScope(0)
			depth--
		}
		var replayed Counter
		rec.Replay(&replayed)
		return replayed == direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRecorderEventContents(t *testing.T) {
	var rec Recorder
	rec.EnterScope(7)
	rec.Access(3, 0x1000, 16, true)
	rec.ExitScope(7)
	if len(rec.Events) != 3 {
		t.Fatalf("events = %d", len(rec.Events))
	}
	if rec.Events[0].Kind != EvEnter || rec.Events[0].Scope != 7 {
		t.Errorf("event 0 = %+v", rec.Events[0])
	}
	e := rec.Events[1]
	if e.Kind != EvAccess || e.Ref != 3 || e.Addr != 0x1000 || e.Size != 16 || !e.Write {
		t.Errorf("event 1 = %+v", e)
	}
	if rec.Events[2].Kind != EvExit {
		t.Errorf("event 2 = %+v", rec.Events[2])
	}
}

func TestDiscardDoesNothing(t *testing.T) {
	var d Discard
	d.EnterScope(1)
	d.Access(1, 2, 3, true)
	d.ExitScope(1)
	// Nothing to assert: Discard must simply not panic.
}
