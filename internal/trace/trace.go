// Package trace defines the instrumentation event API that connects
// workload execution to the analysis engines.
//
// The paper instruments application binaries so that every memory reference
// invokes an event handler, and every routine/loop entry and exit is
// reported. This package is the Go equivalent of that contract: anything
// that can produce a stream of EnterScope/ExitScope/Access events (here, the
// IR interpreter in internal/interp) can feed anything that consumes one
// (the reuse-distance engine, the cache simulator, recorders, ...).
package trace

// RefID identifies a static memory reference (a load or store site).
// IDs are dense small integers assigned by the program representation.
type RefID int32

// NoRef marks the absence of a reference (e.g. "no previous access").
const NoRef RefID = -1

// ScopeID identifies a static program scope (program, file, routine, loop).
// IDs are dense small integers assigned by the scope tree.
type ScopeID int32

// NoScope marks the absence of a scope.
const NoScope ScopeID = -1

// Handler receives the instrumentation event stream.
//
// Access is called once per executed memory reference with the referenced
// virtual address and access size in bytes. EnterScope/ExitScope bracket
// dynamic instances of routines and loops; exits always match the most
// recent unmatched enter (the stream is properly nested).
type Handler interface {
	EnterScope(s ScopeID)
	ExitScope(s ScopeID)
	Access(ref RefID, addr uint64, size uint32, write bool)
}

// Multi fans one event stream out to several handlers, in order.
type Multi []Handler

// EnterScope implements Handler.
func (m Multi) EnterScope(s ScopeID) {
	for _, h := range m {
		h.EnterScope(s)
	}
}

// ExitScope implements Handler.
func (m Multi) ExitScope(s ScopeID) {
	for _, h := range m {
		h.ExitScope(s)
	}
}

// Access implements Handler.
func (m Multi) Access(ref RefID, addr uint64, size uint32, write bool) {
	for _, h := range m {
		h.Access(ref, addr, size, write)
	}
}

// Counter counts events; useful as a cheap sanity handler and in tests.
type Counter struct {
	Enters   uint64
	Exits    uint64
	Accesses uint64
	Reads    uint64
	Writes   uint64
	Bytes    uint64
	MaxDepth int
	depth    int
}

// EnterScope implements Handler.
func (c *Counter) EnterScope(ScopeID) {
	c.Enters++
	c.depth++
	if c.depth > c.MaxDepth {
		c.MaxDepth = c.depth
	}
}

// ExitScope implements Handler.
func (c *Counter) ExitScope(ScopeID) {
	c.Exits++
	c.depth--
}

// Access implements Handler.
func (c *Counter) Access(_ RefID, _ uint64, size uint32, write bool) {
	c.Accesses++
	c.Bytes += uint64(size)
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
}

// EventKind discriminates recorded events.
type EventKind uint8

// Recorded event kinds.
const (
	EvEnter EventKind = iota
	EvExit
	EvAccess
)

// Event is one recorded instrumentation event.
type Event struct {
	Kind  EventKind
	Scope ScopeID
	Ref   RefID
	Addr  uint64
	Size  uint32
	Write bool
}

// Recorder appends every event to an in-memory buffer. It is intended for
// tests and for small traces that must be replayed against several handlers
// with different configurations.
type Recorder struct {
	Events []Event
}

// EnterScope implements Handler.
func (r *Recorder) EnterScope(s ScopeID) {
	r.Events = append(r.Events, Event{Kind: EvEnter, Scope: s})
}

// ExitScope implements Handler.
func (r *Recorder) ExitScope(s ScopeID) {
	r.Events = append(r.Events, Event{Kind: EvExit, Scope: s})
}

// Access implements Handler.
func (r *Recorder) Access(ref RefID, addr uint64, size uint32, write bool) {
	r.Events = append(r.Events, Event{Kind: EvAccess, Ref: ref, Addr: addr, Size: size, Write: write})
}

// Replay feeds the recorded events to h in order.
func (r *Recorder) Replay(h Handler) { ReplayEvents(r.Events, h) }

// ReplayEvents feeds a batch of events to h in order. It is the shared
// decode loop of Recorder.Replay and the parallel fan-out's consumers.
func ReplayEvents(events []Event, h Handler) {
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case EvEnter:
			h.EnterScope(e.Scope)
		case EvExit:
			h.ExitScope(e.Scope)
		case EvAccess:
			h.Access(e.Ref, e.Addr, e.Size, e.Write)
		}
	}
}

// Discard is a Handler that ignores everything. It is useful for measuring
// the raw cost of trace generation.
type Discard struct{}

// EnterScope implements Handler.
func (Discard) EnterScope(ScopeID) {}

// ExitScope implements Handler.
func (Discard) ExitScope(ScopeID) {}

// Access implements Handler.
func (Discard) Access(RefID, uint64, uint32, bool) {}
