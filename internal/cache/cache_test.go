package cache

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"reusetool/internal/histo"
)

func TestCapacities(t *testing.T) {
	h := Itanium2()
	l2 := h.Level("L2")
	if l2 == nil {
		t.Fatal("no L2")
	}
	if l2.CapacityBytes() != 256*1024 {
		t.Errorf("L2 capacity = %d, want 256KB", l2.CapacityBytes())
	}
	if l2.CapacityBlocks() != 2048 {
		t.Errorf("L2 blocks = %d, want 2048", l2.CapacityBlocks())
	}
	l3 := h.Level("L3")
	if l3.CapacityBytes() != 1536*1024 {
		t.Errorf("L3 capacity = %d, want 1.5MB", l3.CapacityBytes())
	}
	tlb := h.Level("TLB")
	if tlb.CapacityBlocks() != 128 || tlb.Sets != 1 {
		t.Errorf("TLB should be 128-entry fully associative")
	}
	if h.Level("L9") != nil {
		t.Error("unknown level should be nil")
	}
}

func TestFullyAssocPMissIsStep(t *testing.T) {
	tlb := Level{Name: "TLB", LineBits: 14, Sets: 1, Assoc: 128}
	if got := tlb.PMiss(127); got != 0 {
		t.Errorf("PMiss(127) = %v, want 0", got)
	}
	if got := tlb.PMiss(128); got != 1 {
		t.Errorf("PMiss(128) = %v, want 1", got)
	}
}

// exactPMiss computes the binomial tail with big.Float for verification.
func exactPMiss(d uint64, sets, assoc int) float64 {
	p := new(big.Float).Quo(big.NewFloat(1), big.NewFloat(float64(sets)))
	q := new(big.Float).Sub(big.NewFloat(1), p)
	// term_0 = q^d
	term := big.NewFloat(1)
	for i := uint64(0); i < d; i++ {
		term.Mul(term, q)
	}
	sum := new(big.Float).Set(term)
	ratio := new(big.Float).Quo(p, q)
	for k := 0; k < assoc-1; k++ {
		term.Mul(term, big.NewFloat(float64(d-uint64(k))))
		term.Quo(term, big.NewFloat(float64(k+1)))
		term.Mul(term, ratio)
		sum.Add(sum, term)
	}
	f, _ := sum.Float64()
	if f > 1 {
		f = 1
	}
	return 1 - f
}

func TestPMissMatchesExactSmall(t *testing.T) {
	l := Level{Name: "L2", LineBits: 7, Sets: 256, Assoc: 8}
	for _, d := range []uint64{0, 7, 8, 100, 500, 1000, 2048, 4096, 10000} {
		got := l.PMiss(d)
		want := exactPMiss(d, l.Sets, l.Assoc)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("PMiss(%d) = %v, want %v", d, got, want)
		}
	}
}

func TestPMissProperties(t *testing.T) {
	l := Level{Name: "L3", LineBits: 7, Sets: 2048, Assoc: 6}
	// Bounds and monotonicity.
	prev := -1.0
	for d := uint64(0); d < 1<<18; d = d*2 + 1 {
		pm := l.PMiss(d)
		if pm < 0 || pm > 1 {
			t.Fatalf("PMiss(%d) = %v out of [0,1]", d, pm)
		}
		if pm < prev-1e-12 {
			t.Fatalf("PMiss not monotone at d=%d: %v < %v", d, pm, prev)
		}
		prev = pm
	}
	// Below associativity, a reuse can never miss.
	if l.PMiss(uint64(l.Assoc)-1) != 0 {
		t.Error("PMiss below associativity should be 0")
	}
	// Far beyond capacity it must saturate at ~1.
	if pm := l.PMiss(100 * l.CapacityBlocks()); pm < 0.999999 {
		t.Errorf("PMiss far beyond capacity = %v, want ~1", pm)
	}
	// Near half capacity a set-associative cache has a small but nonzero
	// miss probability.
	pm := l.PMiss(l.CapacityBlocks() / 2)
	if pm <= 0 || pm >= 0.5 {
		t.Errorf("PMiss(capacity/2) = %v, want small positive", pm)
	}
}

func TestPMissUnderflowRegime(t *testing.T) {
	l := Level{Name: "L2", LineBits: 7, Sets: 256, Assoc: 8}
	// d large enough that (1-p)^d underflows float64: must return exactly 1
	// rather than NaN.
	got := l.PMiss(1 << 40)
	if got != 1 {
		t.Errorf("PMiss(2^40) = %v, want 1", got)
	}
}

func TestPMissQuickBounds(t *testing.T) {
	f := func(dRaw uint32, setsRaw, assocRaw uint8) bool {
		sets := 1 << (setsRaw % 12)
		assoc := 1 + int(assocRaw%16)
		l := Level{Sets: sets, Assoc: assoc}
		pm := l.PMiss(uint64(dRaw))
		return pm >= 0 && pm <= 1 && !math.IsNaN(pm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExpectedMissesVsFullyAssoc(t *testing.T) {
	l2 := Itanium2().Levels[0]
	h := histo.New()
	h.AddN(10, 1000)                     // always hits
	h.AddN(l2.CapacityBlocks()*16, 1000) // always misses
	h.Add(histo.Cold)                    // compulsory
	fa := l2.FullyAssocMisses(h)
	sa := l2.ExpectedMisses(h)
	if fa != 1001 {
		t.Errorf("FullyAssocMisses = %v, want 1001", fa)
	}
	if math.Abs(sa-1001) > 1 {
		t.Errorf("ExpectedMisses = %v, want ~1001", sa)
	}
	// A distance at half capacity: fully-assoc says hit, set-assoc says a
	// small positive expected miss count.
	h2 := histo.New()
	h2.AddN(l2.CapacityBlocks()/2, 1000)
	if got := l2.FullyAssocMisses(h2); got != 0 {
		t.Errorf("FullyAssocMisses(half capacity) = %v, want 0", got)
	}
	if got := l2.ExpectedMisses(h2); got <= 0 || got >= 500 {
		t.Errorf("ExpectedMisses(half capacity) = %v, want small positive", got)
	}
	// Nil histogram.
	if l2.ExpectedMisses(nil) != 0 || l2.FullyAssocMisses(nil) != 0 {
		t.Error("nil histogram should predict 0 misses")
	}
}

func TestGranularitiesGroupByLineSize(t *testing.T) {
	h := Itanium2()
	grans := h.Granularities()
	if len(grans) != 2 {
		t.Fatalf("granularities = %d, want 2 (lines + pages)", len(grans))
	}
	var line, page *struct {
		thresholds []uint64
		names      []string
	}
	for _, g := range grans {
		s := &struct {
			thresholds []uint64
			names      []string
		}{g.Thresholds, g.LevelNames}
		switch g.BlockBits {
		case 7:
			line = s
		case 14:
			page = s
		}
	}
	if line == nil || page == nil {
		t.Fatal("missing granularity")
	}
	if len(line.thresholds) != 2 || line.thresholds[0] != 2048 || line.thresholds[1] != 12288 {
		t.Errorf("line thresholds = %v, want [2048 12288]", line.thresholds)
	}
	if len(page.thresholds) != 1 || page.thresholds[0] != 128 {
		t.Errorf("page thresholds = %v, want [128]", page.thresholds)
	}
	if line.names[0] != "L2" || line.names[1] != "L3" || page.names[0] != "TLB" {
		t.Errorf("level names wrong: %v %v", line.names, page.names)
	}
}

func TestScaledHierarchyPreservesRatios(t *testing.T) {
	full, scaled := Itanium2(), ScaledItanium2()
	fullRatio := float64(full.Level("L3").CapacityBytes()) / float64(full.Level("L2").CapacityBytes())
	scaledRatio := float64(scaled.Level("L3").CapacityBytes()) / float64(scaled.Level("L2").CapacityBytes())
	if math.Abs(fullRatio-scaledRatio) > 1e-9 {
		t.Errorf("L3/L2 ratio changed: %v vs %v", fullRatio, scaledRatio)
	}
	if scaled.Level("L2").CapacityBytes() >= full.Level("L2").CapacityBytes() {
		t.Error("scaled L2 should be smaller")
	}
}

func BenchmarkPMiss(b *testing.B) {
	l := Itanium2().Levels[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.PMiss(uint64(i % 100000))
	}
}

func TestUnionGranularities(t *testing.T) {
	grans := UnionGranularities(Itanium2(), Opteron())
	// Block sizes: 128B lines (Itanium), 16KB pages (Itanium), 64B lines
	// (Opteron), 4KB pages (Opteron) = 4 granularities.
	if len(grans) != 4 {
		t.Fatalf("granularities = %d, want 4", len(grans))
	}
	seen := map[uint][]string{}
	for _, g := range grans {
		seen[g.BlockBits] = g.LevelNames
	}
	if len(seen[7]) != 2 { // Itanium L2+L3 share 128B lines
		t.Errorf("128B levels = %v", seen[7])
	}
	if len(seen[6]) != 1 || seen[6][0] != "L2" {
		t.Errorf("64B levels = %v", seen[6])
	}
	// Same hierarchy twice merges thresholds under one granularity set.
	twice := UnionGranularities(Itanium2(), Itanium2())
	if len(twice) != 2 {
		t.Errorf("duplicate hierarchies should not add granularities: %d", len(twice))
	}
	if len(twice[0].Thresholds) != 4 { // L2+L3 twice
		t.Errorf("thresholds = %v", twice[0].Thresholds)
	}
}

func TestOpteronGeometry(t *testing.T) {
	h := Opteron()
	if h.Level("L2").CapacityBytes() != 1024*1024 {
		t.Errorf("Opteron L2 = %d bytes, want 1MB", h.Level("L2").CapacityBytes())
	}
	if h.Level("TLB").CapacityBlocks() != 512 {
		t.Errorf("Opteron TLB = %d entries, want 512", h.Level("TLB").CapacityBlocks())
	}
}
