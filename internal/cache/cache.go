// Package cache turns architecture-independent reuse-distance data into
// cache-miss predictions for concrete memory hierarchies.
//
// For a fully-associative LRU cache the translation is exact: a reuse at
// distance d hits iff d is smaller than the cache capacity in blocks
// (Section I of the paper). For set-associative caches the package
// implements the probabilistic model of Marin & Mellor-Crummey [14]: the d
// intervening distinct blocks are assumed to fall uniformly across sets, so
// a reuse survives in an A-way cache with S sets with probability
// P(X < A), X ~ Binomial(d, 1/S).
package cache

import (
	"fmt"
	"math"

	"reusetool/internal/histo"
	"reusetool/internal/reusedist"
)

// Level describes one cache or TLB level.
type Level struct {
	Name string
	// LineBits is log2 of the block (line or page) size in bytes.
	LineBits uint
	// Sets is the number of sets; 1 means fully associative.
	Sets int
	// Assoc is the number of ways per set.
	Assoc int
	// Latency is the miss penalty in cycles charged by the timing model.
	Latency float64
}

// CapacityBlocks reports the total capacity in blocks.
func (l Level) CapacityBlocks() uint64 { return uint64(l.Sets) * uint64(l.Assoc) }

// CapacityBytes reports the total capacity in bytes.
func (l Level) CapacityBytes() uint64 { return l.CapacityBlocks() << l.LineBits }

// LineSize reports the block size in bytes.
func (l Level) LineSize() uint64 { return 1 << l.LineBits }

// String implements fmt.Stringer.
func (l Level) String() string {
	return fmt.Sprintf("%s[%dB x %d sets x %d ways = %dKB]",
		l.Name, l.LineSize(), l.Sets, l.Assoc, l.CapacityBytes()/1024)
}

// PMiss returns the probability that a reuse at distance d misses in this
// level under the probabilistic set-associative model. For fully
// associative levels (Sets == 1) the result is exactly 0 or 1.
func (l Level) PMiss(d uint64) float64 {
	if l.Sets <= 1 {
		if d >= uint64(l.Assoc) {
			return 1
		}
		return 0
	}
	if d < uint64(l.Assoc) {
		// Fewer intervening blocks than ways: cannot be evicted even if
		// they all map to the same set.
		return 0
	}
	// P(hit) = P(Binomial(d, 1/S) <= A-1), computed as A terms iterated in
	// ordinary floating point: t_0 = (1-p)^d via exp/log1p for stability,
	// t_{k+1} = t_k * (d-k)/(k+1) * p/(1-p).
	p := 1 / float64(l.Sets)
	logT := float64(d) * math.Log1p(-p)
	t := math.Exp(logT)
	if t == 0 {
		// (1-p)^d underflows only when the expected count d/S is huge,
		// where the hit probability is numerically zero anyway.
		return 1
	}
	ratio := p / (1 - p)
	sum := t
	for k := 0; k < l.Assoc-1; k++ {
		t *= float64(d-uint64(k)) / float64(k+1) * ratio
		sum += t
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// ExpectedMisses integrates PMiss over a reuse-distance histogram collected
// at this level's block size, using bin midpoints. Compulsory (cold)
// accesses always miss and are included.
func (l Level) ExpectedMisses(h *histo.Histogram) float64 {
	if h == nil {
		return 0
	}
	sum := float64(h.Cold())
	h.Each(func(b histo.Bin) {
		mid := b.Lo + (b.Hi-b.Lo)/2
		sum += float64(b.Count) * l.PMiss(mid)
	})
	return sum
}

// FullyAssocMisses predicts misses under a fully-associative LRU cache of
// the same capacity, thresholding the histogram at CapacityBlocks.
// Compulsory accesses are included.
func (l Level) FullyAssocMisses(h *histo.Histogram) float64 {
	if h == nil {
		return 0
	}
	return float64(h.Cold()) + h.CountAtLeast(l.CapacityBlocks())
}

// Hierarchy is an ordered set of cache levels (closest first) plus the
// scalar parameters the timing model needs.
type Hierarchy struct {
	Name   string
	Levels []Level
	// BaseCPI is the no-stall cost in cycles per memory access used by the
	// timing model.
	BaseCPI float64
	// PageBits is log2 of the virtual-memory page size.
	PageBits uint
}

// Level returns the named level, or nil.
func (h *Hierarchy) Level(name string) *Level {
	for i := range h.Levels {
		if h.Levels[i].Name == name {
			return &h.Levels[i]
		}
	}
	return nil
}

// Granularities groups the hierarchy's levels by block size into the
// granularity list a reusedist.Collector needs: levels sharing a block size
// share one collection engine, with one exact-miss threshold per level (its
// fully-associative capacity in blocks).
func (h *Hierarchy) Granularities() []reusedist.Granularity {
	var out []reusedist.Granularity
	byBits := map[uint]int{}
	for _, l := range h.Levels {
		idx, ok := byBits[l.LineBits]
		if !ok {
			idx = len(out)
			byBits[l.LineBits] = idx
			out = append(out, reusedist.Granularity{
				Name:      fmt.Sprintf("block%d", l.LineSize()),
				BlockBits: l.LineBits,
			})
		}
		out[idx].Thresholds = append(out[idx].Thresholds, l.CapacityBlocks())
		out[idx].LevelNames = append(out[idx].LevelNames, l.Name)
	}
	return out
}

// Itanium2 is the hierarchy used throughout the paper's evaluation:
// 256KB 8-way L2 and 1.5MB 6-way L3 with 128-byte lines, and a 128-entry
// fully-associative TLB with 16KB pages. (The Itanium2 L1 does not hold
// floating-point data and the paper models L2/L3/TLB only.) Latencies are
// approximate Itanium2 (Madison) miss costs in cycles.
func Itanium2() *Hierarchy {
	return &Hierarchy{
		Name: "Itanium2",
		Levels: []Level{
			{Name: "L2", LineBits: 7, Sets: 256, Assoc: 8, Latency: 8},
			{Name: "L3", LineBits: 7, Sets: 2048, Assoc: 6, Latency: 120},
			{Name: "TLB", LineBits: 14, Sets: 1, Assoc: 128, Latency: 30},
		},
		BaseCPI:  1.0,
		PageBits: 14,
	}
}

// ScaledItanium2 is the Itanium2 hierarchy with capacities divided by 16
// and 4KB pages. The repository's experiments run problem sizes scaled
// down from the paper's (mesh 20–200 becomes 8–40, etc.); shrinking the
// caches by the same factor preserves the working-set/capacity ratios —
// and therefore the crossover shapes of Figures 8 and 11 — at laptop-scale
// run times.
func ScaledItanium2() *Hierarchy {
	return &Hierarchy{
		Name: "ScaledItanium2",
		Levels: []Level{
			{Name: "L2", LineBits: 7, Sets: 16, Assoc: 8, Latency: 8},
			{Name: "L3", LineBits: 7, Sets: 128, Assoc: 6, Latency: 120},
			{Name: "TLB", LineBits: 12, Sets: 1, Assoc: 32, Latency: 30},
		},
		BaseCPI:  1.0,
		PageBits: 12,
	}
}

// Opteron is a contemporary comparison machine with 64-byte lines (a
// different collection granularity than the Itanium2): 1MB 16-way L2 as
// the last cache level and a 512-entry 4-way TLB with 4KB pages.
func Opteron() *Hierarchy {
	return &Hierarchy{
		Name: "Opteron",
		Levels: []Level{
			{Name: "L2", LineBits: 6, Sets: 1024, Assoc: 16, Latency: 12},
			{Name: "TLB", LineBits: 12, Sets: 128, Assoc: 4, Latency: 25},
		},
		BaseCPI:  1.0,
		PageBits: 12,
	}
}

// UnionGranularities merges the collection granularities of several
// hierarchies, so one instrumented run can serve predictions for all of
// them (levels sharing a block size share an engine; their thresholds
// and names are concatenated).
func UnionGranularities(hiers ...*Hierarchy) []reusedist.Granularity {
	var out []reusedist.Granularity
	byBits := map[uint]int{}
	for _, h := range hiers {
		for _, g := range h.Granularities() {
			idx, ok := byBits[g.BlockBits]
			if !ok {
				byBits[g.BlockBits] = len(out)
				out = append(out, g)
				continue
			}
			out[idx].Thresholds = append(out[idx].Thresholds, g.Thresholds...)
			out[idx].LevelNames = append(out[idx].LevelNames, g.LevelNames...)
		}
	}
	return out
}
