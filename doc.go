// Package repro is a Go reproduction of "Pinpointing and Exploiting
// Opportunities for Enhancing Data Reuse" (Marin & Mellor-Crummey, ISPASS
// 2008): a reuse-distance-based data-locality analysis toolkit with
// fine-grain attribution of cache misses to reuse patterns, static
// cache-line fragmentation analysis, transformation advice, and full
// reproductions of the paper's Sweep3D and GTC case studies.
//
// The library lives under internal/ (internal/core is the façade);
// cmd/reusetool and cmd/experiments are the command-line entry points;
// examples/ holds runnable walkthroughs; bench_test.go regenerates every
// table and figure of the paper's evaluation.
//
// The codebase's own invariants — deterministic output, an
// allocation-free per-access path, mutex and context discipline — are
// enforced by the type-aware analyzer suite in internal/analyzers,
// driven by cmd/reuselint and gated in CI (DESIGN.md §11).
package repro
