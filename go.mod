module reusetool

go 1.22
