package client_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"reusetool/internal/server"
	"reusetool/pkg/client"
)

// TestClientFitAndPredict walks the typed fit/predict methods against a
// real daemon: fit fig2 from three small runs, then answer a what-if
// query from the cached model.
func TestClientFitAndPredict(t *testing.T) {
	cl := startDaemon(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	req := client.FitRequest{
		Workload:    "fig2",
		TrainParams: []map[string]int64{{"N": 64}, {"N": 96}, {"N": 128}},
	}
	job, err := cl.Fit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := cl.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != client.JobDone {
		t.Fatalf("fit job: %s (%s)", done.Status, done.Error)
	}

	// Address the model by its key from the finished fit job.
	resp, err := cl.Predict(ctx, client.PredictRequest{
		Model:  done.Key,
		Params: map[string]int64{"N": 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != done.Key || len(resp.Levels) == 0 {
		t.Fatalf("predict response incomplete: %+v", resp)
	}
	if resp.Params["N"] != 1024 {
		t.Fatalf("predict params %v", resp.Params)
	}
	if !strings.Contains(resp.Report, "Predicted report") {
		t.Fatalf("predict report missing:\n%s", resp.Report)
	}

	// Address the same model by fit spec instead of key.
	resp2, err := cl.Predict(ctx, client.PredictRequest{
		Workload:    req.Workload,
		TrainParams: req.TrainParams,
		Params:      map[string]int64{"N": 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Model != done.Key {
		t.Fatalf("fit-spec addressing resolved %s, want %s", resp2.Model, done.Key)
	}
}

// TestClientFitUnsoundTrainingTyped is the client-surface contract for
// satellite soundness: the typed error carries the
// unsound_training_input code and is not retried as temporary.
func TestClientFitUnsoundTrainingTyped(t *testing.T) {
	cl := startDaemon(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	req := client.FitRequest{
		Workload:    "fig2",
		TrainParams: []map[string]int64{{"N": 64}, {"N": 96}},
		SampleRate:  4,
	}
	_, err := cl.Fit(ctx, req)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("fit error not typed: %v", err)
	}
	if apiErr.Code != client.CodeUnsoundTrainingInput {
		t.Fatalf("code %q, want %q", apiErr.Code, client.CodeUnsoundTrainingInput)
	}
	if apiErr.Temporary() {
		t.Fatal("unsound_training_input must not be temporary (it would be retried)")
	}
	if apiErr.Status != 400 {
		t.Fatalf("status %d, want 400", apiErr.Status)
	}

	req.SampleRate = 1
	req.SampleMaxBlocks = 128
	if _, err := cl.Fit(ctx, req); !errors.As(err, &apiErr) || apiErr.Code != client.CodeUnsoundTrainingInput {
		t.Fatalf("adaptive sampling: %v, want unsound_training_input", err)
	}
}
