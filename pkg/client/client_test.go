package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"reusetool/internal/server"
	"reusetool/pkg/client"
)

func startDaemon(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	cl := client.New(ts.URL)
	cl.PollInterval = 10 * time.Millisecond
	return cl
}

func TestClientColdWarmAndList(t *testing.T) {
	cl := startDaemon(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := cl.Analyze(ctx, client.AnalyzeRequest{Workload: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	done, err := cl.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != client.JobDone || done.Report == "" {
		t.Fatalf("cold job: status=%s report=%d bytes", done.Status, len(done.Report))
	}
	if done.APIVersion != client.APIVersion {
		t.Fatalf("api_version = %q, want %q", done.APIVersion, client.APIVersion)
	}

	warm, err := cl.Analyze(ctx, client.AnalyzeRequest{Workload: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.Status != client.JobDone {
		t.Fatalf("warm job: cache_hit=%v status=%s", warm.CacheHit, warm.Status)
	}
	if warm.Report != done.Report {
		t.Fatal("warm report differs from cold report")
	}

	jobs, err := cl.Jobs(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.Report != "" || j.Result != nil {
			t.Fatal("list entries must omit payloads")
		}
	}
	doneJobs, err := cl.Jobs(ctx, client.JobDone)
	if err != nil {
		t.Fatal(err)
	}
	if len(doneJobs) != 2 {
		t.Fatalf("done filter returned %d, want 2", len(doneJobs))
	}
	if _, err := cl.Jobs(ctx, client.JobStatus("bogus")); err == nil {
		t.Fatal("bogus state filter accepted")
	}
}

func TestClientTypedErrors(t *testing.T) {
	cl := startDaemon(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var apiErr *client.Error
	_, err := cl.Analyze(ctx, client.AnalyzeRequest{Workload: "no-such-workload"})
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeInvalidRequest || apiErr.Temporary() {
		t.Fatalf("bad workload: %v", err)
	}
	_, err = cl.Job(ctx, "missing")
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeNotFound {
		t.Fatalf("unknown job: %v", err)
	}
	// A plain worker has no /v1/nodes; the 404 still decodes to a typed
	// error even without the envelope.
	_, err = cl.Nodes(ctx)
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeNotFound {
		t.Fatalf("nodes on worker: %v", err)
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != "worker" || h.APIVersion != client.APIVersion {
		t.Fatalf("health = %+v", h)
	}
}

func TestClientRetriesTemporaryRejections(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(client.ErrorEnvelope{
				APIVersion: client.APIVersion,
				Err:        client.ErrorBody{Code: client.CodeQueueFull, Message: "queue full"},
			})
			return
		}
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(client.Job{ID: "j1", Status: client.JobDone})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cl := client.New(ts.URL, client.WithRetry(client.Retry{Attempts: 4, Base: time.Millisecond, Max: 10 * time.Millisecond}))
	job, err := cl.Analyze(context.Background(), client.AnalyzeRequest{Workload: "fig2"})
	if err != nil {
		t.Fatalf("analyze did not survive temporary rejections: %v", err)
	}
	if job.ID != "j1" || calls.Load() != 3 {
		t.Fatalf("job=%+v calls=%d, want success on third call", job, calls.Load())
	}
}

func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(client.ErrorEnvelope{
			Err: client.ErrorBody{Code: client.CodeInvalidRequest, Message: "nope"},
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cl := client.New(ts.URL, client.WithRetry(client.Retry{Attempts: 4, Base: time.Millisecond, Max: 10 * time.Millisecond}))
	_, err := cl.Analyze(context.Background(), client.AnalyzeRequest{})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeInvalidRequest {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("invalid request retried %d times", calls.Load())
	}
}

// TestClientWaitCancelsServerSide: when the caller's context dies
// mid-wait, the daemon must not keep computing for a client that gave
// up — Wait fires a detached best-effort cancel.
func TestClientWaitCancelsServerSide(t *testing.T) {
	cl := startDaemon(t, server.Config{Workers: 1, SimulateLatency: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := cl.Analyze(ctx, client.AnalyzeRequest{Workload: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 150*time.Millisecond)
	defer wcancel()
	if _, err := cl.Wait(wctx, job.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait = %v, want deadline exceeded", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, err := cl.Job(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == client.JobCanceled {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job was not canceled server-side after Wait gave up")
}
