package client

// This file is the source of truth for the reusetoold v1 wire format.
// The server (internal/server) and the cluster coordinator
// (internal/cluster) marshal these exact types, so a client built on
// this package can never drift from the daemon.

// APIVersion is stamped into every v1 response body.
const APIVersion = "v1"

// AnalyzeRequest is the POST /v1/analyze body. Exactly one program
// source must be given: a built-in workload name, inline .loop source,
// or a saved persist stream (base64-encoded by encoding/json) — the
// artifact may also accompany a workload/program, in which case the
// collector is restored from it instead of re-running the interpreter.
// The remaining fields mirror core.Options and the CLI's report knobs.
type AnalyzeRequest struct {
	// Workload names a built-in workload (see workloads.Names).
	Workload string `json:"workload,omitempty"`
	// Program is inline .loop source (see internal/lang).
	Program string `json:"program,omitempty"`
	// Artifact is a persist-v2 stream of previously collected data.
	Artifact []byte `json:"artifact,omitempty"`

	// Params override program parameter defaults.
	Params map[string]int64 `json:"params,omitempty"`
	// Hierarchy selects the target machine: "scaled" (default), "full",
	// or "opteron".
	Hierarchy string `json:"hierarchy,omitempty"`
	// Mode selects the pipeline: "dynamic" (default) or "static".
	Mode string `json:"mode,omitempty"`
	// HistRes overrides the histogram resolution (0 = default).
	HistRes int `json:"histres,omitempty"`
	// Level and MinShare shape the rendered text report (defaults "L2",
	// 0.02).
	Level    string  `json:"level,omitempty"`
	MinShare float64 `json:"minshare,omitempty"`
	// TimeoutMS overrides the job deadline, capped by the daemon.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// SampleRate enables SHARDS spatial sampling at rate R (power of
	// two): ~1 in R memory blocks is analyzed and the report carries
	// scaled estimates. 0 and 1 analyze exactly. Dynamic mode only.
	SampleRate uint64 `json:"sample_rate,omitempty"`
	// SampleMaxBlocks bounds tracked blocks per engine; the rate adapts
	// upward as the cap fills (constant memory for any trace length).
	SampleMaxBlocks int `json:"sample_max_blocks,omitempty"`
	// SampleSeed perturbs the admission hash (0 = fixed default).
	SampleSeed uint64 `json:"sample_seed,omitempty"`
}

// CheckRequest is the POST /v1/check body: run the static reuse
// checker (internal/reusecheck) over one program. Exactly one of
// Workload or Program must be set. Checks run synchronously — no job
// is scheduled and no cache entry is written — so the response carries
// the diagnostics directly.
type CheckRequest struct {
	// Workload names a built-in workload (see workloads.Names).
	Workload string `json:"workload,omitempty"`
	// Program is inline .loop source (see internal/lang).
	Program string `json:"program,omitempty"`
	// Params override program parameter defaults.
	Params map[string]int64 `json:"params,omitempty"`
	// Hierarchy selects the machine miss deltas are predicted on:
	// "scaled" (default), "full", or "opteron".
	Hierarchy string `json:"hierarchy,omitempty"`
	// Level is the hierarchy level miss deltas are reported at
	// (default "L2").
	Level string `json:"level,omitempty"`
}

// CheckDiagnostic is one finding in a CheckResponse. It mirrors
// reusecheck.Diagnostic field for field (same JSON tags), so the CLI's
// -check -json output and the service speak the same schema.
type CheckDiagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Code string `json:"code"`
	// Severity is "defect", "opportunity" or "note".
	Severity string `json:"severity"`
	Msg      string `json:"msg"`
	// Hint is a fix-it suggestion.
	Hint string `json:"hint,omitempty"`
	// MissDelta is the predicted miss reduction at Level (opportunities).
	MissDelta float64 `json:"miss_delta,omitempty"`
	Level     string  `json:"level,omitempty"`
	// Transform names the fixing transformation ("hoist",
	// "interchange", "time-skew").
	Transform string `json:"transform,omitempty"`
	// Legality is the dependence verdict on Transform: "legal",
	// "illegal" or "unknown".
	Legality     string `json:"legality,omitempty"`
	LegalityNote string `json:"legality_note,omitempty"`
}

// CheckResponse is the POST /v1/check response: the deduplicated,
// file:line:code-sorted diagnostics and the finding count (defects and
// opportunities; notes are informational only).
type CheckResponse struct {
	APIVersion string `json:"api_version"`
	// Program is the checked program's name.
	Program string `json:"program"`
	// Findings counts non-note diagnostics — the same quantity that
	// drives the CLI checker's exit code.
	Findings    int               `json:"findings"`
	Diagnostics []CheckDiagnostic `json:"diagnostics"`
}

// FitRequest is the POST /v1/fit body: fit a cross-input scaling model
// from 2–8 (3–5 recommended) small-input training runs of one program.
// Exactly one of Workload or Program must be set. Each TrainParams
// entry is one training run's parameter overrides; the daemon runs (or
// serves from cache) one analysis per entry, then fits. Training runs
// must be exact or R=1 sampled — adaptive or R>1 sampling is refused
// with code "unsound_training_input".
type FitRequest struct {
	// Workload names a built-in workload (see workloads.Names).
	Workload string `json:"workload,omitempty"`
	// Program is inline .loop source (see internal/lang).
	Program string `json:"program,omitempty"`
	// TrainParams lists the training bindings, one map of parameter
	// overrides per run.
	TrainParams []map[string]int64 `json:"train_params"`
	// Hierarchy selects the target machine: "scaled" (default), "full",
	// or "opteron".
	Hierarchy string `json:"hierarchy,omitempty"`
	// HistRes overrides the histogram resolution (0 = default).
	HistRes int `json:"histres,omitempty"`
	// TimeoutMS overrides the fit job deadline, capped by the daemon.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SampleRate may be 1 (exact-equivalent SHARDS sampling) or 0/unset;
	// any other value — and SampleMaxBlocks — is an unsound fit input.
	SampleRate uint64 `json:"sample_rate,omitempty"`
	// SampleMaxBlocks must be 0: adaptive bounded-memory sampling yields
	// scaled estimates and is refused.
	SampleMaxBlocks int `json:"sample_max_blocks,omitempty"`
	// SampleSeed perturbs the admission hash when SampleRate is 1.
	SampleSeed uint64 `json:"sample_seed,omitempty"`
}

// PredictRequest is the POST /v1/predict body: answer a what-if query
// from a fitted model without running the interpreter. The model is
// addressed either directly by cache key (Model, as returned in the fit
// job's Key) or by restating the fit spec (same fields as FitRequest),
// which re-derives the same key.
type PredictRequest struct {
	// Model is the fitted model's cache key (from the /v1/fit job).
	Model string `json:"model,omitempty"`

	// The fit-spec fields mirror FitRequest and are used only when Model
	// is empty.
	Workload    string             `json:"workload,omitempty"`
	Program     string             `json:"program,omitempty"`
	TrainParams []map[string]int64 `json:"train_params,omitempty"`
	Hierarchy   string             `json:"hierarchy,omitempty"`
	HistRes     int                `json:"histres,omitempty"`

	// Params is the what-if binding to predict (defaults fill the rest).
	Params map[string]int64 `json:"params,omitempty"`
	// Level selects the report's focus level (default "L2").
	Level string `json:"level,omitempty"`
}

// PredictedLevel is one cache level's predicted miss breakdown.
type PredictedLevel struct {
	Level string `json:"level"`
	// TotalMisses is the expected miss count under the probabilistic
	// set-associative model, compulsory misses included.
	TotalMisses float64 `json:"total_misses"`
	// ColdMisses is the predicted compulsory-miss count.
	ColdMisses float64 `json:"cold_misses"`
	// CapacityMisses is TotalMisses minus ColdMisses, clamped at zero.
	CapacityMisses float64 `json:"capacity_misses"`
}

// PredictResponse is the POST /v1/predict response, served synchronously
// from the cached model.
type PredictResponse struct {
	APIVersion string `json:"api_version"`
	// Model is the cache key of the model that answered.
	Model string `json:"model"`
	// Params is the complete binding predicted (overrides + defaults).
	Params map[string]int64 `json:"params"`
	Levels []PredictedLevel `json:"levels"`
	// ElapsedUS is the server-side model-lookup + reconstruction time in
	// microseconds — the quantity the sub-millisecond contract is on.
	ElapsedUS float64 `json:"elapsed_us"`
	// Report is the rendered predicted report with the fit-disclosure
	// footer.
	Report string `json:"report,omitempty"`
}

// JobStatus is the lifecycle state of a scheduled analysis.
type JobStatus string

// Job lifecycle states. Queued jobs sit in the FIFO queue; Running jobs
// occupy a worker; the three terminal states distinguish success,
// failure, and cancellation (which includes deadline expiry).
const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is the wire form of a job in API responses.
type Job struct {
	APIVersion string    `json:"api_version,omitempty"`
	ID         string    `json:"id"`
	Status     JobStatus `json:"status"`
	Key        string    `json:"key"`
	CacheHit   bool      `json:"cache_hit"`
	// Node is the worker that ran the job, set by the coordinator.
	Node string `json:"node,omitempty"`
	// Rerouted counts how many times the coordinator moved the job to
	// another worker after a node failure.
	Rerouted  int    `json:"rerouted,omitempty"`
	Error     string `json:"error,omitempty"`
	Submitted string `json:"submitted,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	Report    string `json:"report,omitempty"`
	Result    []byte `json:"result,omitempty"`
}

// JobList is the GET /v1/jobs response: job summaries (no report or
// result payloads) in submission order.
type JobList struct {
	APIVersion string `json:"api_version"`
	Jobs       []Job  `json:"jobs"`
}

// Health is the GET /v1/health (and legacy /healthz) response.
type Health struct {
	APIVersion string `json:"api_version,omitempty"`
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Role distinguishes a worker daemon from a coordinator.
	Role       string `json:"role,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	// NodesHealthy counts registered healthy workers (coordinator only).
	NodesHealthy int `json:"nodes_healthy,omitempty"`
}

// Node is one worker's state in the coordinator's GET /v1/nodes
// response.
type Node struct {
	// URL is the worker daemon's base address.
	URL string `json:"url"`
	// Healthy reports ring membership: false means the node was evicted
	// after consecutive probe failures and takes no new jobs.
	Healthy bool `json:"healthy"`
	// Inflight counts jobs the coordinator currently has on this node.
	Inflight int `json:"inflight"`
	// Failures counts consecutive failed health probes.
	Failures int `json:"failures,omitempty"`
}

// NodeList is the GET /v1/nodes response (coordinator only), in
// sorted URL order.
type NodeList struct {
	APIVersion string `json:"api_version"`
	Nodes      []Node `json:"nodes"`
}

// ErrorCode classifies API failures so clients can branch without
// parsing messages.
type ErrorCode string

// Error codes carried in the {"error":{"code",...}} envelope.
const (
	// CodeInvalidRequest: the request body or parameters were rejected (400).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeTooLarge: the request body exceeded the daemon's cap (413).
	CodeTooLarge ErrorCode = "too_large"
	// CodeNotFound: no such job, node, or cache entry (404).
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict: the operation does not apply in the current state,
	// e.g. canceling a finished job (409).
	CodeConflict ErrorCode = "conflict"
	// CodeQueueFull: the scheduler queue is at capacity; retry with
	// backoff (429).
	CodeQueueFull ErrorCode = "queue_full"
	// CodeDraining: the daemon is shutting down and refuses intake (503).
	CodeDraining ErrorCode = "draining"
	// CodeUnavailable: no healthy worker can take the job (503).
	CodeUnavailable ErrorCode = "unavailable"
	// CodeUpstream: the coordinator could not reach a worker (502).
	CodeUpstream ErrorCode = "upstream"
	// CodeUnsoundTrainingInput: a /v1/fit request asked for adaptive or
	// R>1 sampled training runs, whose scaled estimates are unsound
	// model-fit inputs (400).
	CodeUnsoundTrainingInput ErrorCode = "unsound_training_input"
	// CodeInternal: unexpected server-side failure (500).
	CodeInternal ErrorCode = "internal"
)

// ErrorBody is the structured error carried on every non-2xx response.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// ErrorEnvelope is the non-2xx response body:
// {"api_version":"v1","error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	APIVersion string    `json:"api_version,omitempty"`
	Err        ErrorBody `json:"error"`
}

// Error is the typed client-side form of an API failure.
type Error struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the machine-readable error class.
	Code ErrorCode
	// Message is the human-readable detail.
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return "reusetoold: " + string(e.Code) + " (" + e.Message + ")"
}

// Temporary reports whether retrying the same request later may
// succeed: back-pressure, drain, and upstream connectivity failures
// are temporary; validation failures are not.
func (e *Error) Temporary() bool {
	switch e.Code {
	case CodeQueueFull, CodeDraining, CodeUnavailable, CodeUpstream:
		return true
	}
	return e.Status >= 500
}
