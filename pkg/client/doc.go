// Package client is the typed Go client for the reusetoold v1 API —
// the public, supported way to talk to an analysis daemon or a cluster
// coordinator. It owns the wire types (the server marshals these exact
// structs), classifies failures with machine-readable error codes, and
// retries temporary rejections with jittered exponential backoff.
//
// # API reference
//
// Every response body carries "api_version":"v1". Non-2xx responses
// carry {"api_version":"v1","error":{"code","message"}}; the codes are
// the ErrorCode constants in this package.
//
//	method + path        request          2xx response    notes
//	-------------------  ---------------  --------------  ------------------------------------------
//	POST /v1/analyze     AnalyzeRequest   Job             200 = cache hit, 202 = queued;
//	                                                      429 queue_full, 503 draining/unavailable
//	GET /v1/jobs/{id}    —                Job             404 not_found after pruning
//	GET /v1/jobs         ?state=queued…   JobList         summaries only (no report/result)
//	DELETE /v1/jobs/{id} —                Job             409 conflict if already terminal
//	GET /v1/health       —                Health          503 while draining; /healthz is an alias
//	GET /v1/nodes        —                (coordinator)   per-node health and inflight counts
//	GET /v1/cache/{key}  —                gob entry       daemon-to-daemon shared cache tier
//	PUT /v1/cache/{key}  gob entry        —               fingerprint-verified before storing
//	GET /metrics         —                Prometheus text
//
// The PR 5 routes are unchanged and remain fully compatible: /healthz
// aliases /v1/health, and the analyze/jobs endpoints kept their paths
// and job-document field names — this package only added api_version,
// node, and rerouted fields alongside them.
//
// # Usage
//
//	cl := client.New("http://127.0.0.1:8375")
//	job, err := cl.Analyze(ctx, client.AnalyzeRequest{Workload: "sweep3d"})
//	if err != nil { ... }
//	if !job.Status.Terminal() {
//		job, err = cl.Wait(ctx, job.ID)
//	}
//	fmt.Print(job.Report)
//
// Typed failures unwrap to *client.Error:
//
//	var apiErr *client.Error
//	if errors.As(err, &apiErr) && apiErr.Code == client.CodeQueueFull { ... }
package client
