package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Retry shapes the client's backoff policy. Attempts counts the total
// tries (1 = no retry); the delay before try n is Base*2^(n-1) capped
// at Max, with up to 50% random jitter subtracted so synchronized
// clients fan out.
type Retry struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
}

// DefaultRetry is the policy New installs: four tries over roughly a
// second of cumulative backoff.
var DefaultRetry = Retry{Attempts: 4, Base: 50 * time.Millisecond, Max: 2 * time.Second}

// delay returns the jittered backoff before retry attempt (1-based).
func (r Retry) delay(attempt int) time.Duration {
	d := r.Base << (attempt - 1)
	if d > r.Max || d <= 0 {
		d = r.Max
	}
	// Subtractive jitter keeps the bound: d/2 <= delay <= d.
	return d - time.Duration(rand.Int63n(int64(d)/2+1))
}

// Client is a typed, context-aware reusetoold v1 API client. It talks
// to a worker daemon or a cluster coordinator interchangeably — the
// coordinator serves the same surface.
//
// The zero value is not usable; construct with New. All methods are
// safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry Retry
	// PollInterval paces Wait's job polling (default 100ms).
	PollInterval time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry substitutes the backoff policy (default DefaultRetry).
func WithRetry(r Retry) Option { return func(c *Client) { c.retry = r } }

// New builds a client for the daemon at base (e.g. "http://127.0.0.1:8375").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:         strings.TrimRight(base, "/"),
		hc:           http.DefaultClient,
		retry:        DefaultRetry,
		PollInterval: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	if c.retry.Attempts <= 0 {
		c.retry.Attempts = 1
	}
	if c.retry.Base <= 0 {
		c.retry.Base = DefaultRetry.Base
	}
	if c.retry.Max < c.retry.Base {
		c.retry.Max = c.retry.Base
	}
	return c
}

// BaseURL reports the daemon address the client targets.
func (c *Client) BaseURL() string { return c.base }

// Analyze submits an analysis request. A cache hit returns a JobDone
// document immediately; otherwise the returned job is queued — poll it
// with Job or Wait. Temporary rejections (queue full, draining,
// coordinator upstream failures) are retried with jittered backoff.
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*Job, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var job Job
	err = c.withRetry(ctx, retryTemporary, func() error {
		return c.do(ctx, http.MethodPost, "/v1/analyze", payload, &job)
	})
	if err != nil {
		return nil, fmt.Errorf("analyze at %s: %w", c.base, err)
	}
	return &job, nil
}

// Check runs the static reuse checker on a program and returns its
// diagnostics. Checks are synchronous — there is no job to poll — and
// temporary rejections (draining, coordinator upstream failures) are
// retried with jittered backoff.
func (c *Client) Check(ctx context.Context, req CheckRequest) (*CheckResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp CheckResponse
	err = c.withRetry(ctx, retryTemporary, func() error {
		return c.do(ctx, http.MethodPost, "/v1/check", payload, &resp)
	})
	if err != nil {
		return nil, fmt.Errorf("check at %s: %w", c.base, err)
	}
	return &resp, nil
}

// Fit submits a cross-input scaling-model fit. A model-cache hit
// returns a JobDone document immediately; otherwise the returned job
// covers the 3–5 training runs plus the fit — poll it with Job or
// Wait. The finished job's Key is the model's cache key, usable as
// PredictRequest.Model. Unsound training inputs (adaptive or R>1
// sampling) fail fast with an *Error carrying
// CodeUnsoundTrainingInput.
func (c *Client) Fit(ctx context.Context, req FitRequest) (*Job, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var job Job
	err = c.withRetry(ctx, retryTemporary, func() error {
		return c.do(ctx, http.MethodPost, "/v1/fit", payload, &job)
	})
	if err != nil {
		return nil, fmt.Errorf("fit at %s: %w", c.base, err)
	}
	return &job, nil
}

// Predict answers a what-if query from a fitted model, synchronously —
// no job is scheduled and no interpreter runs. A missing model returns
// an *Error with CodeNotFound: fit first.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp PredictResponse
	err = c.withRetry(ctx, retryTemporary, func() error {
		return c.do(ctx, http.MethodPost, "/v1/predict", payload, &resp)
	})
	if err != nil {
		return nil, fmt.Errorf("predict at %s: %w", c.base, err)
	}
	return &resp, nil
}

// Job fetches the current state of a job by ID.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var job Job
	err := c.withRetry(ctx, retryTransport, func() error {
		return c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job)
	})
	if err != nil {
		return nil, fmt.Errorf("job %s at %s: %w", id, c.base, err)
	}
	return &job, nil
}

// Jobs lists job summaries, newest last. A non-empty state filters to
// that lifecycle state.
func (c *Client) Jobs(ctx context.Context, state JobStatus) ([]Job, error) {
	path := "/v1/jobs"
	if state != "" {
		path += "?state=" + url.QueryEscape(string(state))
	}
	var list JobList
	err := c.withRetry(ctx, retryTransport, func() error {
		return c.do(ctx, http.MethodGet, path, nil, &list)
	})
	if err != nil {
		return nil, fmt.Errorf("list jobs at %s: %w", c.base, err)
	}
	return list.Jobs, nil
}

// Cancel requests cancellation of a queued or running job. Canceling a
// finished job returns an *Error with CodeConflict.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var job Job
	// Never retried: a second DELETE after success reports a conflict.
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &job); err != nil {
		return nil, fmt.Errorf("cancel job %s at %s: %w", id, c.base, err)
	}
	return &job, nil
}

// Nodes lists the worker fleet of a cluster coordinator. Against a
// plain worker daemon it returns an *Error with CodeNotFound.
func (c *Client) Nodes(ctx context.Context) ([]Node, error) {
	var list NodeList
	err := c.withRetry(ctx, retryTransport, func() error {
		return c.do(ctx, http.MethodGet, "/v1/nodes", nil, &list)
	})
	if err != nil {
		return nil, fmt.Errorf("list nodes at %s: %w", c.base, err)
	}
	return list.Nodes, nil
}

// Health reports daemon readiness. It is never retried — probes want
// the first answer.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/v1/health", nil, &h); err != nil {
		return nil, fmt.Errorf("health of %s: %w", c.base, err)
	}
	return &h, nil
}

// Wait polls a job until it reaches a terminal state. If ctx expires
// first, the job is best-effort canceled server-side (the daemon should
// not keep working for a client that gave up) and ctx's error returned.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				c.detachedCancel(ctx, id)
				return nil, fmt.Errorf("waiting for job %s: %w", id, ctx.Err())
			}
			return nil, err
		}
		if job.Status.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			c.detachedCancel(ctx, id)
			return nil, fmt.Errorf("waiting for job %s: %w", id, ctx.Err())
		case <-time.After(c.PollInterval):
		}
	}
}

// detachedCancel cancels a job after the caller's context already
// died: it detaches from the cancellation while keeping ctx's values.
func (c *Client) detachedCancel(ctx context.Context, id string) {
	cancelCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	_, _ = c.Cancel(cancelCtx, id)
}

// retryClass picks which failures withRetry retries.
type retryClass int

const (
	// retryTransport retries only transport errors (request never
	// reached a conclusive response).
	retryTransport retryClass = iota
	// retryTemporary also retries API errors that report Temporary().
	retryTemporary
)

func (c *Client) withRetry(ctx context.Context, class retryClass, f func() error) error {
	var last error
	for attempt := 1; ; attempt++ {
		err := f()
		if err == nil {
			return nil
		}
		last = err
		if ctx.Err() != nil || attempt >= c.retry.Attempts || !retryable(err, class) {
			return last
		}
		select {
		case <-ctx.Done():
			return last
		case <-time.After(c.retry.delay(attempt)):
		}
	}
}

func retryable(err error, class retryClass) bool {
	var apiErr *Error
	if errors.As(err, &apiErr) {
		return class == retryTemporary && apiErr.Temporary()
	}
	// No *Error means the transport failed before a response decoded.
	return true
}

// do performs one API round-trip: 2xx decodes into out, non-2xx decodes
// the error envelope into a typed *Error.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return fmt.Errorf("%s %s: read response: %w", method, path, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("%s %s: status %d: decode: %w", method, path, resp.StatusCode, err)
		}
		return nil
	}
	return decodeError(resp.StatusCode, data)
}

// decodeError maps a non-2xx body onto *Error. Bodies that are not the
// v1 envelope (proxies, panics) still produce a typed error with the
// raw text as the message.
func decodeError(status int, data []byte) *Error {
	var env ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Err.Code != "" {
		return &Error{Status: status, Code: env.Err.Code, Message: env.Err.Message}
	}
	msg := strings.TrimSpace(string(data))
	if msg == "" {
		msg = http.StatusText(status)
	}
	code := CodeInternal
	switch status {
	case http.StatusNotFound:
		code = CodeNotFound
	case http.StatusBadRequest:
		code = CodeInvalidRequest
	case http.StatusServiceUnavailable:
		code = CodeUnavailable
	}
	return &Error{Status: status, Code: code, Message: msg}
}
